package cpu

import (
	"math/rand/v2"
	"testing"

	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/trace"
)

// randomStream builds a random but control-flow-consistent instruction
// stream: a torture test for the pipeline (no hangs, everything retires).
func randomStream(seed uint64, n int) []trace.Instr {
	rng := rand.New(rand.NewPCG(seed, 17))
	var ins []trace.Instr
	pc := uint64(0x1000)
	csDepth := 0
	lockAddr := uint64(0x70_0000)
	for len(ins) < n {
		emit := func(in trace.Instr) {
			in.PC = pc
			ins = append(ins, in)
			pc += 4
		}
		switch rng.IntN(14) {
		case 0, 1, 2, 3:
			emit(trace.Instr{Op: trace.OpIntALU, Src1: uint8(rng.IntN(8)), Dest: uint8(rng.IntN(8) + 1)})
		case 4:
			emit(trace.Instr{Op: trace.OpFPALU, Src1: uint8(rng.IntN(8)), Dest: uint8(rng.IntN(8) + 1)})
		case 5, 6:
			emit(trace.Instr{Op: trace.OpLoad, Addr: 0x10_0000 + uint64(rng.IntN(1<<16))&^7, Dest: uint8(rng.IntN(8) + 1)})
		case 7:
			emit(trace.Instr{Op: trace.OpStore, Addr: 0x10_0000 + uint64(rng.IntN(1<<16))&^7, Src1: uint8(rng.IntN(8))})
		case 8:
			// Control-flow-consistent branch.
			taken := rng.IntN(2) == 0
			target := pc + 4 + uint64(rng.IntN(8))*4
			in := trace.Instr{Op: trace.OpBranch, PC: pc, Taken: taken, Target: target, Src1: uint8(rng.IntN(8))}
			ins = append(ins, in)
			if taken {
				pc = target
			} else {
				pc += 4
			}
		case 9:
			if csDepth == 0 {
				emit(trace.Instr{Op: trace.OpLockAcquire, Addr: lockAddr, Dest: 1})
				csDepth++
			}
		case 10:
			if csDepth > 0 {
				emit(trace.Instr{Op: trace.OpWriteBar})
				emit(trace.Instr{Op: trace.OpLockRelease, Addr: lockAddr, Src1: 1})
				csDepth--
			}
		case 11:
			emit(trace.Instr{Op: trace.OpMemBar})
		case 12:
			emit(trace.Instr{Op: trace.OpPrefetch, Addr: 0x20_0000 + uint64(rng.IntN(1<<14))})
		case 13:
			emit(trace.Instr{Op: trace.OpFlush, Addr: 0x10_0000 + uint64(rng.IntN(1<<16))&^7})
		}
	}
	// Close any open critical section so locks drain.
	if csDepth > 0 {
		ins = append(ins, trace.Instr{Op: trace.OpWriteBar, PC: pc})
		pc += 4
		ins = append(ins, trace.Instr{Op: trace.OpLockRelease, PC: pc, Addr: lockAddr, Src1: 1})
	}
	return ins
}

// TestRandomStreamsComplete fuzzes the core across every consistency model
// and implementation: all instructions must retire, with no deadlock.
func TestRandomStreamsComplete(t *testing.T) {
	models := []config.ConsistencyModel{config.RC, config.PC, config.SC}
	impls := []config.ConsistencyImpl{config.ImplPlain, config.ImplPrefetch, config.ImplSpeculative}
	for seed := uint64(1); seed <= 4; seed++ {
		for _, m := range models {
			for _, impl := range impls {
				for _, inorder := range []bool{false, true} {
					cfg := config.Default()
					cfg.Nodes = 1
					cfg.Consistency = m
					cfg.ConsistencyOpts = impl
					cfg.InOrder = inorder
					ins := randomStream(seed, 2000)
					ms := memsys.MustNew(cfg)
					c := New(cfg, 0, ms.Node(0), newTestLocks())
					c.SwitchTo(&Context{ID: 0, Stream: trace.NewSliceStream(ins)})
					finished := false
					for cycle := uint64(1); cycle < 2_000_000; cycle++ {
						c.Tick(cycle)
						if c.NeedsSwitch() {
							finished = true
							break
						}
					}
					if !finished {
						t.Fatalf("seed %d %v/%v inorder=%v: pipeline hung (%s)",
							seed, m, impl, inorder, c.String())
					}
					want := uint64(0)
					for _, in := range ins {
						if in.Op != trace.OpSyscall {
							want++
						}
					}
					if c.Retired != want {
						t.Fatalf("seed %d %v/%v inorder=%v: retired %d of %d",
							seed, m, impl, inorder, c.Retired, want)
					}
				}
			}
		}
	}
}

// TestMultiCoreRandomSharing fuzzes four cores sharing data and one lock.
func TestMultiCoreRandomSharing(t *testing.T) {
	cfg := config.Default()
	ms := memsys.MustNew(cfg)
	locks := newTestLocks()
	var cores []*Core
	var want []uint64
	for n := 0; n < 4; n++ {
		c := New(cfg, n, ms.Node(n), locks)
		ins := randomStream(uint64(n+100), 3000)
		var w uint64
		for _, in := range ins {
			if in.Op != trace.OpSyscall {
				w++
			}
		}
		want = append(want, w)
		c.SwitchTo(&Context{ID: n, Stream: trace.NewSliceStream(ins)})
		cores = append(cores, c)
	}
	for cycle := uint64(1); cycle < 5_000_000; cycle++ {
		running := false
		for _, c := range cores {
			c.Tick(cycle)
			if !c.NeedsSwitch() {
				running = true
			}
		}
		if !running {
			break
		}
	}
	for n, c := range cores {
		if c.Retired != want[n] {
			t.Errorf("core %d retired %d of %d", n, c.Retired, want[n])
		}
	}
}
