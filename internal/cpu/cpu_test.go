package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testLocks is a minimal lock manager for single-core tests.
type testLocks struct {
	held   map[uint64]int
	freeAt map[uint64]uint64
}

func newTestLocks() *testLocks {
	return &testLocks{held: map[uint64]int{}, freeAt: map[uint64]uint64{}}
}

func (l *testLocks) TryAcquire(addr uint64, proc int, now uint64) bool {
	if o, ok := l.held[addr]; ok {
		return o == proc
	}
	if now < l.freeAt[addr] {
		return false
	}
	l.held[addr] = proc
	return true
}

func (l *testLocks) Release(addr uint64, proc int, at uint64) {
	delete(l.held, addr)
	l.freeAt[addr] = at
}

// runCore executes a stream to completion on a single core and returns it.
func runCore(t *testing.T, cfg config.Config, ins []trace.Instr) *Core {
	t.Helper()
	cfg.Nodes = 1
	ms := memsys.MustNew(cfg)
	c := New(cfg, 0, ms.Node(0), newTestLocks())
	c.SwitchTo(&Context{ID: 0, Stream: trace.NewSliceStream(ins)})
	for cycle := uint64(1); cycle < 3_000_000; cycle++ {
		c.Tick(cycle)
		if c.NeedsSwitch() {
			c.TakeContext(cycle)
			return c
		}
	}
	t.Fatal("stream did not finish")
	return nil
}

// loop builds a simple loop body repeated n times at fixed PCs.
func loop(n int, body func(emit func(trace.Instr), iter int)) []trace.Instr {
	var ins []trace.Instr
	for i := 0; i < n; i++ {
		pc := uint64(0x1000)
		emit := func(in trace.Instr) {
			in.PC = pc
			pc += 4
			ins = append(ins, in)
		}
		body(emit, i)
		ins = append(ins, trace.Instr{Op: trace.OpBranch, PC: pc, Taken: i < n-1, Target: 0x1000})
	}
	return ins
}

func TestRetiresAllInstructions(t *testing.T) {
	ins := loop(100, func(emit func(trace.Instr), i int) {
		emit(trace.Instr{Op: trace.OpIntALU, Dest: 1})
		emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
		emit(trace.Instr{Op: trace.OpLoad, Addr: 0x10_0000 + uint64(i)*8, Dest: 3})
		emit(trace.Instr{Op: trace.OpStore, Addr: 0x10_0000 + uint64(i)*8, Src1: 3})
	})
	c := runCore(t, config.Default(), ins)
	if c.Retired != uint64(len(ins)) {
		t.Errorf("retired %d of %d", c.Retired, len(ins))
	}
	if c.Bk.Total() == 0 {
		t.Error("no execution time accounted")
	}
}

func TestOOOFasterThanInOrderOnIndependentMisses(t *testing.T) {
	// Independent loads to distinct lines: OOO overlaps them, in-order
	// stalls at the first use.
	mk := func() []trace.Instr {
		return loop(400, func(emit func(trace.Instr), i int) {
			base := 0x20_0000 + uint64(i)*256
			emit(trace.Instr{Op: trace.OpLoad, Addr: base, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
			emit(trace.Instr{Op: trace.OpLoad, Addr: base + 64, Dest: 3})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 3, Dest: 4})
			emit(trace.Instr{Op: trace.OpLoad, Addr: base + 128, Dest: 5})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 5, Dest: 6})
		})
	}
	ooo := config.Default()
	cycOOO := coreCycles(t, ooo, mk())
	iord := config.Default()
	iord.InOrder = true
	cycIn := coreCycles(t, iord, mk())
	if float64(cycIn) < float64(cycOOO)*1.15 {
		t.Errorf("in-order (%d cycles) not sufficiently slower than OOO (%d)", cycIn, cycOOO)
	}
}

func coreCycles(t *testing.T, cfg config.Config, ins []trace.Instr) uint64 {
	t.Helper()
	cfg.Nodes = 1
	ms := memsys.MustNew(cfg)
	c := New(cfg, 0, ms.Node(0), newTestLocks())
	c.SwitchTo(&Context{ID: 0, Stream: trace.NewSliceStream(ins)})
	for cycle := uint64(1); cycle < 5_000_000; cycle++ {
		c.Tick(cycle)
		if c.NeedsSwitch() {
			return cycle
		}
	}
	t.Fatal("did not finish")
	return 0
}

func TestSyscallTriggersSwitch(t *testing.T) {
	ins := []trace.Instr{
		{Op: trace.OpIntALU, PC: 4, Dest: 1},
		{Op: trace.OpSyscall, PC: 8, Latency: 5000},
		{Op: trace.OpIntALU, PC: 12, Dest: 2},
	}
	cfg := config.Default()
	cfg.Nodes = 1
	ms := memsys.MustNew(cfg)
	c := New(cfg, 0, ms.Node(0), newTestLocks())
	ctx := &Context{ID: 0, Stream: trace.NewSliceStream(ins)}
	c.SwitchTo(ctx)
	var switched uint64
	for cycle := uint64(1); cycle < 100_000; cycle++ {
		c.Tick(cycle)
		if c.NeedsSwitch() {
			got := c.TakeContext(cycle)
			if got != ctx {
				t.Fatal("wrong context returned")
			}
			switched = cycle
			break
		}
	}
	if switched == 0 {
		t.Fatal("syscall never triggered a switch")
	}
	if ctx.BlockedUntil != switched+5000 {
		t.Errorf("BlockedUntil = %d, want %d", ctx.BlockedUntil, switched+5000)
	}
	if ctx.Finished {
		t.Error("context wrongly finished; one instruction remains")
	}
	if ctx.Retired != 1 {
		t.Errorf("retired %d before the syscall, want 1", ctx.Retired)
	}
	// Resume: the remaining instruction must retire and the stream end.
	c.SwitchTo(ctx)
	for cycle := uint64(200_000); cycle < 300_000; cycle++ {
		c.Tick(cycle)
		if c.NeedsSwitch() {
			c.TakeContext(cycle)
			break
		}
	}
	if !ctx.Finished || ctx.Retired != 2 {
		t.Errorf("after resume: finished=%v retired=%d", ctx.Finished, ctx.Retired)
	}
}

func TestLockAcquireReleaseSequence(t *testing.T) {
	const lock = 0x30_0000
	ins := []trace.Instr{
		{Op: trace.OpLockAcquire, PC: 4, Addr: lock, Dest: 1},
		{Op: trace.OpLoad, PC: 8, Addr: lock + 64, Dest: 2},
		{Op: trace.OpIntALU, PC: 12, Src1: 2, Dest: 3},
		{Op: trace.OpStore, PC: 16, Addr: lock + 64, Src1: 3},
		{Op: trace.OpWriteBar, PC: 20},
		{Op: trace.OpLockRelease, PC: 24, Addr: lock, Src1: 3},
	}
	cfg := config.Default()
	cfg.Nodes = 1
	ms := memsys.MustNew(cfg)
	locks := newTestLocks()
	c := New(cfg, 0, ms.Node(0), locks)
	ctx := &Context{ID: 0, Stream: trace.NewSliceStream(ins)}
	c.SwitchTo(ctx)
	for cycle := uint64(1); cycle < 100_000 && !c.NeedsSwitch(); cycle++ {
		c.Tick(cycle)
	}
	if _, held := locks.held[lock]; held {
		t.Error("lock still held after release retired")
	}
	if ctx.InCriticalSection() {
		t.Error("critical-section depth not restored")
	}
	if c.LockTries == 0 {
		t.Error("no lock activity recorded")
	}
}

func TestSCSlowerThanRC(t *testing.T) {
	mk := func() []trace.Instr {
		return loop(300, func(emit func(trace.Instr), i int) {
			base := 0x40_0000 + uint64(i)*192
			emit(trace.Instr{Op: trace.OpLoad, Addr: base, Dest: 1})
			emit(trace.Instr{Op: trace.OpStore, Addr: base + 64, Src1: 1})
			emit(trace.Instr{Op: trace.OpLoad, Addr: base + 128, Dest: 2})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 2, Dest: 3})
		})
	}
	rc := config.Default()
	rcCycles := coreCycles(t, rc, mk())
	sc := config.Default()
	sc.Consistency = config.SC
	scCycles := coreCycles(t, sc, mk())
	if scCycles <= rcCycles {
		t.Errorf("straightforward SC (%d) not slower than RC (%d)", scCycles, rcCycles)
	}
	// Speculation closes most of the gap.
	scSpec := config.Default()
	scSpec.Consistency = config.SC
	scSpec.ConsistencyOpts = config.ImplSpeculative
	specCycles := coreCycles(t, scSpec, mk())
	if specCycles >= scCycles {
		t.Errorf("SC+speculation (%d) not faster than plain SC (%d)", specCycles, scCycles)
	}
}

func TestWriteStallAccountedUnderSC(t *testing.T) {
	ins := loop(200, func(emit func(trace.Instr), i int) {
		emit(trace.Instr{Op: trace.OpStore, Addr: 0x50_0000 + uint64(i)*64, Src1: 0})
		emit(trace.Instr{Op: trace.OpIntALU, Dest: 1})
	})
	cfg := config.Default()
	cfg.Consistency = config.SC
	c := runCore(t, cfg, ins)
	if c.Bk[stats.Write] == 0 {
		t.Error("SC store-at-head stalls not accounted as write time")
	}
}

func TestInOrderClampsWindow(t *testing.T) {
	cfg := config.Default()
	cfg.InOrder = true
	cfg.Nodes = 1
	ms := memsys.MustNew(cfg)
	c := New(cfg, 0, ms.Node(0), newTestLocks())
	if len(c.rState) > 2*cfg.IssueWidth+8 {
		t.Errorf("in-order window not clamped: %d", len(c.rState))
	}
}

func TestBranchMispredictStallsFetch(t *testing.T) {
	// A data-dependent branch with an unpredictable pattern behind a load:
	// resolution latency must show up as lost time vs a predictable one.
	mk := func(pattern func(int) bool) []trace.Instr {
		return loop(600, func(emit func(trace.Instr), i int) {
			emit(trace.Instr{Op: trace.OpLoad, Addr: 0x60_0000 + uint64(i%4)*8, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
		})
	}
	_ = mk
	pred := loop(600, func(emit func(trace.Instr), i int) {
		emit(trace.Instr{Op: trace.OpIntALU, Dest: 1})
		emit(trace.Instr{Op: trace.OpBranch, Src1: 1, Taken: true, Target: 0x2000})
		emit(trace.Instr{Op: trace.OpIntALU, Dest: 2})
	})
	unpred := loop(600, func(emit func(trace.Instr), i int) {
		emit(trace.Instr{Op: trace.OpIntALU, Dest: 1})
		// LCG-ish pseudo-random outcome defeats the predictor.
		taken := (i*2654435761)>>13&1 == 0
		emit(trace.Instr{Op: trace.OpBranch, Src1: 1, Taken: taken, Target: 0x2000})
		emit(trace.Instr{Op: trace.OpIntALU, Dest: 2})
	})
	cfg := config.Default()
	cp := coreCycles(t, cfg, pred)
	cu := coreCycles(t, cfg, unpred)
	if cu <= cp {
		t.Errorf("unpredictable branches (%d cycles) not slower than predictable (%d)", cu, cp)
	}
}
