package cpu

import "repro/internal/stats"

// ResetStats zeroes execution-time accounting and event counters, keeping
// all microarchitectural state (used to exclude warm-up transients).
func (c *Core) ResetStats() {
	c.Bk = stats.Breakdown{}
	c.Retired = 0
	c.Rollbacks = 0
	c.LockSpins = 0
	c.LockTries = 0
	c.LockWaits = 0
	c.SpecLoads = 0
	c.Violations = 0
	c.HTMBegins = 0
	c.HTMCommits = 0
	c.HTMConflictAborts = 0
	c.HTMCapacityAborts = 0
	c.HTMExplicitAborts = 0
	c.HTMFallbacks = 0
	c.ROBOcc = [5]uint64{}
	c.pred.CondBranches, c.pred.CondMispred = 0, 0
	c.pred.TargetBranches, c.pred.TargetMispred = 0, 0
}
