package cpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/trace"
)

// Diagnostic accessors for machine-state snapshots (internal/diag). They
// expose pipeline occupancy and the oldest in-flight instruction so a
// watchdog trip or crash report can say what each core was waiting on.

// ROBLen returns the number of instructions in the window.
func (c *Core) ROBLen() int { return c.robLen() }

// FetchQueueLen returns the number of instructions in the fetch buffer.
func (c *Core) FetchQueueLen() int { return len(c.fetchQ) - c.fqHead }

// WriteBufferLen returns the number of entries in the post-retirement
// write buffer.
func (c *Core) WriteBufferLen() int { return c.wbufLen() }

// HeadInstr describes the oldest unretired instruction — the one whose
// stall holds up the whole window. ok is false when the window is empty.
func (c *Core) HeadInstr() (op string, pc, addr uint64, ok bool) {
	if c.robLen() == 0 {
		return "", 0, 0, false
	}
	i := c.headSeq & c.robMask
	return c.rOp[i].String(), c.rIn[i].PC, c.rIn[i].Addr, true
}

// Memory-ordering checks (cfg.DebugChecks). Under SC every non-speculative
// memory operation must perform in program order; under PC stores perform
// FIFO and loads bind in order among loads. The pipeline observes each
// operation's perform point exactly once and in program order (that is what
// the issue/retire gates enforce), so monotone perform-time watermarks are
// an independent restatement of the model's ordering rules: if a gate is
// ever relaxed incorrectly, a watermark regresses and the run fails loudly.
// Violations panic; core.Machine recovers them into a diagnostic error.

// dbgCheckLoadBind runs when a non-speculative load binds its value at
// cycle now.
func (c *Core) dbgCheckLoadBind(now, pc uint64) {
	switch c.cfg.Consistency {
	case config.SC:
		if now < c.dbgLastPerform {
			panic(fmt.Sprintf("cpu%d: SC order violated: load pc=%#x bound at %d before an older op performed at %d",
				c.id, pc, now, c.dbgLastPerform))
		}
		c.dbgLastPerform = now
	case config.PC:
		if now < c.dbgLastLoadBind {
			panic(fmt.Sprintf("cpu%d: PC load order violated: load pc=%#x bound at %d before an older load at %d",
				c.id, pc, now, c.dbgLastLoadBind))
		}
		c.dbgLastLoadBind = now
	}
}

// dbgCheckStorePerform runs when an SC store at the head of the window
// issues, performing at done.
func (c *Core) dbgCheckStorePerform(done, pc uint64) {
	if done < c.dbgLastPerform {
		panic(fmt.Sprintf("cpu%d: SC order violated: store pc=%#x performs at %d before an older op performed at %d",
			c.id, pc, done, c.dbgLastPerform))
	}
	c.dbgLastPerform = done
}

// dbgCheckStoreFIFO runs when a PC write-buffer store issues at cycle now,
// performing at done: the previous store must already have performed.
func (c *Core) dbgCheckStoreFIFO(now, done, pc uint64) {
	if now < c.dbgLastStoreDone {
		panic(fmt.Sprintf("cpu%d: PC store FIFO violated: store pc=%#x issued at %d before the prior store performed at %d",
			c.id, pc, now, c.dbgLastStoreDone))
	}
	c.dbgLastStoreDone = done
}

// SpinningOn reports whether the head instruction is a lock acquire that
// has already found the lock held (the core is spinning), and on which
// lock address.
func (c *Core) SpinningOn() (addr uint64, ok bool) {
	if c.robLen() == 0 {
		return 0, false
	}
	i := c.headSeq & c.robMask
	if c.rOp[i] == trace.OpLockAcquire && c.rFlags[i]&fWaited != 0 {
		return c.rIn[i].Addr, true
	}
	return 0, false
}
