package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sample(seq int, tags map[string]string) *Sample {
	s := &Sample{
		Seq:          seq,
		Cycle:        uint64(seq+1) * 100_000,
		Cycles:       100_000,
		Tags:         tags,
		Instructions: 250_000,
		IPC:          0.625,
		Dir:          DirSample{Reads: 10, ReadsDirty: 3, Writes: 5},
		Mesh:         MeshSample{Messages: 42, Flits: 300, AvgLatency: 31.5},
		Locks:        LockSample{Tries: 7, Waits: 2, SpinCycles: 900},
		Probes:       map[string]uint64{"txns_committed": 3},
		Cores:        []CoreSample{{ID: 0, ContextID: 1, Retired: 250_000, IPC: 2.5, ROBLen: 12}},
	}
	s.Breakdown[stats.Busy] = 62_500
	return s
}

func TestParseFilterAndMatch(t *testing.T) {
	f, err := ParseFilter("workload=oltp, node , fig=2a")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(map[string]string{"workload": "oltp", "node": "3", "fig": "2a"}) {
		t.Error("filter should match tags satisfying every term")
	}
	if f.Matches(map[string]string{"workload": "dss", "node": "3", "fig": "2a"}) {
		t.Error("filter should reject a mismatched value")
	}
	if f.Matches(map[string]string{"workload": "oltp", "fig": "2a"}) {
		t.Error("filter should reject a missing key")
	}
	if _, err := ParseFilter("=oops"); err == nil {
		t.Error("empty key must be rejected")
	}
	all, err := ParseFilter("  ")
	if err != nil || !all.Matches(nil) {
		t.Errorf("blank spec should match everything, got %v, %v", all, err)
	}
}

func TestRouterFiltersAndDropsFailedSinks(t *testing.T) {
	var got []int
	var r Router
	r.Attach(FuncSink(func(s *Sample) error {
		got = append(got, s.Seq)
		return nil
	}), Filter{"workload": "oltp"})

	fails := 0
	r.Attach(FuncSink(func(s *Sample) error {
		fails++
		return errors.New("disk full")
	}), nil)

	r.Publish(sample(0, map[string]string{"workload": "oltp"}))
	r.Publish(sample(1, map[string]string{"workload": "dss"}))
	r.Publish(sample(2, map[string]string{"workload": "oltp"}))

	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("filtered sink saw %v, want [0 2]", got)
	}
	if fails != 1 {
		t.Errorf("failing sink called %d times, want 1 (dropped after first error)", fails)
	}
	if r.Sinks() != 1 {
		t.Errorf("live sinks = %d, want 1", r.Sinks())
	}
	if r.Err() == nil {
		t.Error("router should report the sink failure")
	}
}

type memFile struct{ strings.Builder }

func (m *memFile) Close() error { return nil }

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf memFile
	sink := NewJSONLSink(&buf)
	want := sample(0, map[string]string{"workload": "oltp"})
	if err := sink.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(sample(1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var got Sample
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.Instructions != want.Instructions ||
		got.Breakdown[stats.Busy] != want.Breakdown[stats.Busy] ||
		got.Tags["workload"] != "oltp" || got.Probes["txns_committed"] != 3 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}

func TestCSVSinkShape(t *testing.T) {
	var buf memFile
	sink := NewCSVSink(&buf)
	for i := 0; i < 3; i++ {
		if err := sink.Write(sample(i, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want header + 3", len(rows))
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Errorf("row %d has %d fields, header has %d", i, len(row), len(rows[0]))
		}
	}
	header := strings.Join(rows[0], ",")
	for _, col := range []string{"seq", "ipc", "bk_busy", "bk_sync", "l1d_mpki", "dir_reads_dirty", "lock_waits", "probe_txns_committed"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing column %q: %s", col, header)
		}
	}
	if rows[1][0] != "0" || rows[3][0] != "2" {
		t.Errorf("seq column wrong: %v %v", rows[1][0], rows[3][0])
	}
}

func TestPromSinkExposition(t *testing.T) {
	sink := NewPromSink()
	srv := httptest.NewServer(sink.Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("pre-sample scrape status %d", res.StatusCode)
	}

	tags := map[string]string{"workload": "oltp"}
	if err := sink.Write(sample(0, tags)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(sample(1, tags)); err != nil {
		t.Fatal(err)
	}
	page := sink.Render()
	// Counters accumulate across the two samples; gauges show the last.
	for _, want := range []string{
		`dbsim_interval_ipc{workload="oltp"} 0.625`,
		`dbsim_instructions_total{workload="oltp"} 500000`,
		`dbsim_dir_reads_dirty_total{workload="oltp"} 6`,
		`dbsim_breakdown_cycles_total{component="busy",workload="oltp"} 125000`,
		`dbsim_probe_total{probe="txns_committed",workload="oltp"} 6`,
		`dbsim_core_interval_ipc{core="0",workload="oltp"} 2.5`,
		"# TYPE dbsim_instructions_total counter",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q\n%s", want, page)
		}
	}
}

func TestListenPromSinkServes(t *testing.T) {
	sink, err := ListenPromSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := sink.Write(sample(0, nil)); err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(fmt.Sprintf("http://%s/metrics", sink.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("scrape status %d", res.StatusCode)
	}
}

func TestPipelineProbesAndTags(t *testing.T) {
	p := New(50_000)
	p.SetTag("workload", "oltp")
	n := uint64(0)
	p.RegisterProbe("txns_committed", func() uint64 { return n })
	if p.Interval != 50_000 {
		t.Errorf("interval = %d", p.Interval)
	}
	if p.Tags["workload"] != "oltp" {
		t.Errorf("tags = %v", p.Tags)
	}
	probes := p.Probes()
	if len(probes) != 1 || probes[0].Name != "txns_committed" {
		t.Fatalf("probes = %+v", probes)
	}
	n = 7
	if got := probes[0].Read(); got != 7 {
		t.Errorf("probe read = %d, want 7", got)
	}
}

func TestHistogramTotal(t *testing.T) {
	h := Histogram{Buckets: []uint64{0, 3, 5}}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
	if (Histogram{}).Total() != 0 {
		t.Error("empty histogram total should be 0")
	}
}
