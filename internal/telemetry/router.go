package telemetry

import (
	"fmt"
	"strings"
)

// Sink receives samples from the Router. Implementations need not be
// concurrency-safe: the Router publishes from the simulation goroutine
// only. Close flushes and releases the sink's resources.
type Sink interface {
	Write(s *Sample) error
	Close() error
}

// Filter selects samples by tag. Every key must be present on the sample,
// and when the filter's value is non-empty it must match exactly. A nil
// or empty filter matches everything.
type Filter map[string]string

// ParseFilter parses "key=value,key2,key3=v3" (an empty value means "key
// present"). An empty string parses to a match-all filter.
func ParseFilter(spec string) (Filter, error) {
	f := Filter{}
	if strings.TrimSpace(spec) == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, _ := strings.Cut(part, "=")
		if k == "" {
			return nil, fmt.Errorf("telemetry: filter term %q has empty key", part)
		}
		f[k] = v
	}
	return f, nil
}

// Matches reports whether tags satisfy the filter.
func (f Filter) Matches(tags map[string]string) bool {
	for k, want := range f {
		got, ok := tags[k]
		if !ok || (want != "" && got != want) {
			return false
		}
	}
	return true
}

type route struct {
	sink   Sink
	filter Filter
}

// Router fans samples out to attached sinks whose filters match. Sink
// write failures are sticky — recorded once and the sink dropped — so a
// full disk cannot abort a multi-hour simulation; callers check Err after
// the run.
type Router struct {
	routes []route
	errs   []error
}

// Attach registers a sink; samples whose tags match filter are delivered
// to it. The router owns the sink from here on and closes it in Close.
func (r *Router) Attach(sink Sink, filter Filter) {
	r.routes = append(r.routes, route{sink: sink, filter: filter})
}

// Publish delivers the sample to every matching sink.
func (r *Router) Publish(s *Sample) {
	for i := range r.routes {
		rt := &r.routes[i]
		if rt.sink == nil || !rt.filter.Matches(s.Tags) {
			continue
		}
		if err := rt.sink.Write(s); err != nil {
			r.errs = append(r.errs, fmt.Errorf("telemetry: sink write: %w", err))
			_ = rt.sink.Close()
			rt.sink = nil // drop the failed sink, keep the run alive
		}
	}
}

// Sinks returns the number of live (non-failed) sinks.
func (r *Router) Sinks() int {
	n := 0
	for _, rt := range r.routes {
		if rt.sink != nil {
			n++
		}
	}
	return n
}

// Close closes every live sink, keeping the first close error.
func (r *Router) Close() error {
	for i := range r.routes {
		if r.routes[i].sink == nil {
			continue
		}
		if err := r.routes[i].sink.Close(); err != nil {
			r.errs = append(r.errs, fmt.Errorf("telemetry: sink close: %w", err))
		}
		r.routes[i].sink = nil
	}
	return r.Err()
}

// Err returns the first sink failure observed (nil if none).
func (r *Router) Err() error {
	if len(r.errs) == 0 {
		return nil
	}
	return r.errs[0]
}
