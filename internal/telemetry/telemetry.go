// Package telemetry is the simulator's interval time-series pipeline:
// every N simulated cycles the machine (internal/core) snapshots its
// counters into a typed Sample — interval IPC, execution-time component
// deltas, MPKI, MSHR/ROB occupancy histograms, directory transaction mix,
// mesh traffic, lock-manager activity, workload probes — and publishes it
// through a Router to pluggable Sinks (JSONL, CSV, a live Prometheus
// text-format HTTP endpoint).
//
// The pipeline is a pure observer: it reads counters the machine already
// maintains and never feeds anything back, so a run with telemetry
// attached retires exactly the instructions of a run without, in exactly
// the same number of cycles (asserted by TestTelemetryDeterminism).
//
// The collector → router → sink shape follows production metric stacks
// (ClusterCockpit's cc-metric-collector is the reference architecture):
// the machine is the collector, the Router applies tag-based filtering,
// and Sinks are interchangeable back-ends.
package telemetry

import "repro/internal/stats"

// DefaultInterval is the sampling period in simulated cycles when neither
// the pipeline nor the machine configuration overrides it.
const DefaultInterval = 100_000

// Histogram is a bucketed occupancy distribution accumulated over one
// sampling interval. For MSHR histograms Buckets[n] is the number of
// cycles with exactly n registers in use (index 0 unused); for the ROB
// histogram the five buckets are empty, (0,¼], (¼,½], (½,¾] and (¾,1] of
// the instruction window, in cycles.
type Histogram struct {
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Total returns the histogram mass (cycles).
func (h Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// DirSample is the home-directory transaction mix over one interval.
type DirSample struct {
	Reads              uint64 `json:"reads"`
	ReadsDirty         uint64 `json:"reads_dirty"` // serviced cache-to-cache
	Writes             uint64 `json:"writes"`
	WritesShared       uint64 `json:"writes_shared"`
	Upgrades           uint64 `json:"upgrades"`
	Writebacks         uint64 `json:"writebacks"`
	Flushes            uint64 `json:"flushes"`
	MigratoryTransfers uint64 `json:"migratory_transfers"`
}

// MeshSample is interconnect traffic over one interval.
type MeshSample struct {
	Messages    uint64  `json:"messages"`
	Flits       uint64  `json:"flits"`
	QueueCycles uint64  `json:"queue_cycles"` // latency due to link contention
	AvgLatency  float64 `json:"avg_latency"`  // cycles, this interval's messages
}

// LockSample is db lock-manager activity over one interval: spin counters
// summed across processors plus the shared lock table's contention
// counters.
type LockSample struct {
	Tries      uint64 `json:"tries"`       // acquire attempts
	Waits      uint64 `json:"waits"`       // attempts that found the lock held
	SpinCycles uint64 `json:"spin_cycles"` // cycles spent spinning
	Acquires   uint64 `json:"acquires"`    // lock-table ownership transitions
	Contended  uint64 `json:"contended"`   // acquires with a failed attempt first
	Handoffs   uint64 `json:"handoffs"`    // acquires from a different previous owner
}

// HTMSample is latch-elision activity over one interval, summed across
// processors (all zero unless LatchPolicy=htm).
type HTMSample struct {
	Begins         uint64 `json:"begins"`
	Commits        uint64 `json:"commits"`
	ConflictAborts uint64 `json:"conflict_aborts"`
	CapacityAborts uint64 `json:"capacity_aborts"`
	ExplicitAborts uint64 `json:"explicit_aborts"`
	Fallbacks      uint64 `json:"fallbacks"`
}

// CoreSample is one processor's share of the interval.
type CoreSample struct {
	ID        int     `json:"id"`
	ContextID int     `json:"ctx"` // scheduled process (-1 = idle)
	Retired   uint64  `json:"retired"`
	IPC       float64 `json:"ipc"`
	ROBLen    int     `json:"rob"` // occupancy at sample time
}

// Sample is one interval's snapshot. All counter fields are deltas over
// the interval; negative deltas (a warm-up statistics reset crossed the
// interval) are clamped to zero rather than wrapped.
type Sample struct {
	Seq    int               `json:"seq"`
	Cycle  uint64            `json:"cycle"`  // machine cycle at sample time
	Cycles uint64            `json:"cycles"` // interval length
	Tags   map[string]string `json:"tags,omitempty"`

	Instructions uint64          `json:"instructions"`
	IPC          float64         `json:"ipc"`       // per-processor, non-idle
	Idle         uint64          `json:"idle"`      // idle+switch cycles, all CPUs
	Breakdown    stats.Breakdown `json:"breakdown"` // component deltas, cycles

	L1IMisses float64 `json:"l1i_mpki"` // misses per kilo-instruction
	L1DMisses float64 `json:"l1d_mpki"`
	L2Misses  float64 `json:"l2_mpki"`

	StreamBufHits   uint64 `json:"sbuf_hits"`
	StreamBufMisses uint64 `json:"sbuf_misses"`

	L1DMSHROcc Histogram `json:"l1d_mshr_occ"`
	L2MSHROcc  Histogram `json:"l2_mshr_occ"`
	ROBOcc     Histogram `json:"rob_occ"`

	Dir   DirSample  `json:"dir"`
	Mesh  MeshSample `json:"mesh"`
	Locks LockSample `json:"locks"`
	HTM   HTMSample  `json:"htm"`

	// Probes are workload-level gauges registered on the pipeline
	// (e.g. txns_committed), also as interval deltas.
	Probes map[string]uint64 `json:"probes,omitempty"`

	Cores []CoreSample `json:"cores,omitempty"`
}

// Probe is a named workload-level counter read at every sample; the
// pipeline reports its interval delta.
type Probe struct {
	Name string
	Read func() uint64
}

// Pipeline couples a Router with the sampling period and workload probes.
// Construct with New, attach sinks, register probes, then hand it to
// core.RunOptions.Telemetry (or experiments.Scale.Telemetry).
type Pipeline struct {
	Router

	// Interval is the sampling period in cycles; 0 defers to the machine
	// configuration's TelemetryInterval (and then DefaultInterval).
	Interval uint64

	// Tags are stamped on every sample (e.g. workload=oltp); sinks can be
	// filtered on them at Attach time.
	Tags map[string]string

	probes []Probe
}

// New returns a pipeline sampling every interval cycles (0 = defer to the
// machine configuration).
func New(interval uint64) *Pipeline {
	return &Pipeline{Interval: interval}
}

// SetTag stamps key=value on every subsequent sample.
func (p *Pipeline) SetTag(key, value string) {
	if p.Tags == nil {
		p.Tags = make(map[string]string)
	}
	p.Tags[key] = value
}

// RegisterProbe adds a workload-level counter to every sample. Read is
// called at sample time on the simulation goroutine; it must be cheap and
// side-effect free.
func (p *Pipeline) RegisterProbe(name string, read func() uint64) {
	p.probes = append(p.probes, Probe{Name: name, Read: read})
}

// Probes returns the registered probes (read by the core's collector).
func (p *Pipeline) Probes() []Probe { return p.probes }
