package telemetry

import (
	"strings"
	"testing"
)

// TestSeriesFileNameNoCollision: labels that sanitize to the same filename
// text must still produce distinct series files.
func TestSeriesFileNameNoCollision(t *testing.T) {
	a := SeriesFileName("fig6", "OLTP-SC/plain")
	b := SeriesFileName("fig6", "OLTP-SC_plain")
	if a == b {
		t.Fatalf("colliding series names: %q", a)
	}
	for _, name := range []string{a, b} {
		if !strings.HasSuffix(name, ".jsonl") {
			t.Errorf("%q missing .jsonl suffix", name)
		}
		for _, r := range name {
			ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
				r == '.' || r == '-' || r == '_'
			if !ok {
				t.Errorf("%q contains non-portable rune %q", name, r)
			}
		}
	}
}

// TestSeriesFileNameStable: the name is a pure function of (id, label).
func TestSeriesFileNameStable(t *testing.T) {
	if SeriesFileName("fig2a", "ooo-4way") != SeriesFileName("fig2a", "ooo-4way") {
		t.Fatal("series name not deterministic")
	}
	if SeriesHash("fig2a", "x") == SeriesHash("fig2b", "x") {
		t.Fatal("hash ignores the experiment id")
	}
}
