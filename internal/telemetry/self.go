package telemetry

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/checkpoint"
)

// SelfSample is one observation of a worker process's own health —
// cc-metric-collector's `self` collector pattern applied to sweep workers:
// each process samples its Go runtime (heap, GC, goroutines), its OS
// resource usage (rusage), and its work rate, and the samples flow through
// the telemetry Prometheus surface so a scraper sees every worker in a
// fleet under one page.
type SelfSample struct {
	UnixMilli int64 `json:"unix_ms"`

	// Go runtime.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	Goroutines      int    `json:"goroutines"`

	// OS rusage (self).
	UserCPUSeconds float64 `json:"user_cpu_seconds"`
	SysCPUSeconds  float64 `json:"sys_cpu_seconds"`
	MaxRSSKB       int64   `json:"max_rss_kb"`

	// Work rate, supplied by the caller's counter.
	PointsDone   uint64  `json:"points_done"`
	PointsPerSec float64 `json:"points_per_sec"`

	// Checkpoint activity (process-wide cumulative, from
	// internal/checkpoint): captures written, bytes written, and seconds
	// spent writing. Rides every heartbeat so sweepd's /metrics page
	// shows per-worker checkpoint roll-ups.
	CheckpointCaptures     uint64  `json:"checkpoint_captures,omitempty"`
	CheckpointBytes        uint64  `json:"checkpoint_bytes,omitempty"`
	CheckpointWriteSeconds float64 `json:"checkpoint_write_seconds,omitempty"`

	// Sim carries cumulative simulation counters the worker has
	// accumulated from its completed points (e.g. lock-table contention
	// and HTM elision totals), keyed by metric suffix.
	Sim map[string]uint64 `json:"sim,omitempty"`
}

// CollectSelf takes one self-sample. pointsDone is the caller's cumulative
// completed-work counter (0 when not tracked); the rate fields are filled
// in by SelfCollector, which knows the previous sample.
func CollectSelf(pointsDone uint64) *SelfSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &SelfSample{
		UnixMilli:       time.Now().UnixMilli(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
		PointsDone:      pointsDone,
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		s.UserCPUSeconds = tvSeconds(ru.Utime)
		s.SysCPUSeconds = tvSeconds(ru.Stime)
		s.MaxRSSKB = int64(ru.Maxrss)
	}
	s.CheckpointCaptures, s.CheckpointBytes, s.CheckpointWriteSeconds = checkpoint.Stats()
	return s
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}

// SelfCollector samples the process on an interval and hands each sample
// to OnSample (e.g. "attach to the next heartbeat", "serve on /metrics").
type SelfCollector struct {
	// Interval between samples (0 = 5s).
	Interval time.Duration
	// Points returns the cumulative completed-work counter (nil = 0).
	Points func() uint64
	// SimCounters returns cumulative simulation counters to attach to
	// each sample (nil = none).
	SimCounters func() map[string]uint64
	// OnSample observes each sample (nil = samples are only retained for
	// Last).
	OnSample func(*SelfSample)

	mu   sync.Mutex
	last *SelfSample
}

// Sample takes one sample immediately, derives the work rate from the
// previous sample, retains it for Last, and forwards it to OnSample.
func (c *SelfCollector) Sample() *SelfSample {
	var points uint64
	if c.Points != nil {
		points = c.Points()
	}
	s := CollectSelf(points)
	if c.SimCounters != nil {
		s.Sim = c.SimCounters()
	}
	c.mu.Lock()
	if prev := c.last; prev != nil && s.UnixMilli > prev.UnixMilli {
		dt := float64(s.UnixMilli-prev.UnixMilli) / 1e3
		s.PointsPerSec = float64(s.PointsDone-prev.PointsDone) / dt
	}
	c.last = s
	c.mu.Unlock()
	if c.OnSample != nil {
		c.OnSample(s)
	}
	return s
}

// Last returns the most recent sample (nil before the first).
func (c *SelfCollector) Last() *SelfSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Run samples on the interval until ctx ends. An immediate first sample is
// taken so consumers never see an empty window.
func (c *SelfCollector) Run(ctx context.Context) {
	iv := c.Interval
	if iv <= 0 {
		iv = 5 * time.Second
	}
	c.Sample()
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Sample()
		}
	}
}

// PromSelf renders a self-sample as Prometheus gauges named
// <prefix>self_* with the given labels (e.g. worker="w1"), using the same
// label grammar as PromSink so sweepd can splice every worker's latest
// sample into one exposition page.
func PromSelf(sb *strings.Builder, prefix string, s *SelfSample, tags map[string]string) {
	if s == nil {
		return
	}
	lbl := labelString(tags)
	g := func(name string, v float64) {
		fmt.Fprintf(sb, "%s%s%s %g\n", prefix, name, lbl, v)
	}
	g("self_heap_alloc_bytes", float64(s.HeapAllocBytes))
	g("self_heap_sys_bytes", float64(s.HeapSysBytes))
	g("self_total_alloc_bytes", float64(s.TotalAllocBytes))
	g("self_gc_runs", float64(s.NumGC))
	g("self_goroutines", float64(s.Goroutines))
	g("self_user_cpu_seconds", s.UserCPUSeconds)
	g("self_sys_cpu_seconds", s.SysCPUSeconds)
	g("self_max_rss_kb", float64(s.MaxRSSKB))
	g("self_points_done", float64(s.PointsDone))
	g("self_points_per_sec", s.PointsPerSec)
	g("self_checkpoint_captures", float64(s.CheckpointCaptures))
	g("self_checkpoint_bytes", float64(s.CheckpointBytes))
	g("self_checkpoint_write_seconds", s.CheckpointWriteSeconds)
	g("self_sample_unix_ms", float64(s.UnixMilli))
	if len(s.Sim) > 0 {
		keys := make([]string, 0, len(s.Sim))
		for k := range s.Sim {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g("sim_"+sanitizeLabelName(k), float64(s.Sim[k]))
		}
	}
}
