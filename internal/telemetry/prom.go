package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/stats"
)

// PromSink exposes the series as a live Prometheus text-format endpoint:
// the latest sample becomes interval gauges (dbsim_interval_*) and the
// deltas are additionally accumulated into *_total counters, so a scraper
// polling wall-clock time sees monotone counters even though the series
// is indexed by simulated cycles.
type PromSink struct {
	mu     sync.Mutex
	last   *Sample
	totals map[string]uint64 // cumulative counters by rendered name+labels

	srv *http.Server
	ln  net.Listener
}

// NewPromSink returns a sink with no server attached; scrape it through
// Handler (tests, embedding into an existing mux).
func NewPromSink() *PromSink {
	return &PromSink{totals: make(map[string]uint64)}
}

// ListenPromSink starts an HTTP server on addr (e.g. ":9090") serving the
// metrics page at / and /metrics. It returns once the listener is bound,
// so a scrape immediately after is answered (an empty page until the
// first sample arrives).
func ListenPromSink(addr string) (*PromSink, error) {
	s := NewPromSink()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: prom listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	// Profiling alongside metrics: the telemetry port doubles as the
	// process's pprof surface, so a hung or slow simulation is inspectable
	// without restarting it with extra flags.
	MountPprof(mux)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address ("" when no server was started).
func (s *PromSink) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Write implements Sink.
func (s *PromSink) Write(sm *Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = sm
	lbl := labelString(sm.Tags)
	add := func(name string, v uint64) { s.totals[name+lbl] += v }
	add("dbsim_instructions_total", sm.Instructions)
	add("dbsim_idle_cycles_total", sm.Idle)
	add("dbsim_streambuf_hits_total", sm.StreamBufHits)
	add("dbsim_streambuf_misses_total", sm.StreamBufMisses)
	add("dbsim_dir_reads_total", sm.Dir.Reads)
	add("dbsim_dir_reads_dirty_total", sm.Dir.ReadsDirty)
	add("dbsim_dir_writes_total", sm.Dir.Writes)
	add("dbsim_dir_writes_shared_total", sm.Dir.WritesShared)
	add("dbsim_dir_upgrades_total", sm.Dir.Upgrades)
	add("dbsim_dir_writebacks_total", sm.Dir.Writebacks)
	add("dbsim_dir_flushes_total", sm.Dir.Flushes)
	add("dbsim_dir_migratory_transfers_total", sm.Dir.MigratoryTransfers)
	add("dbsim_mesh_messages_total", sm.Mesh.Messages)
	add("dbsim_mesh_flits_total", sm.Mesh.Flits)
	add("dbsim_mesh_queue_cycles_total", sm.Mesh.QueueCycles)
	add("dbsim_lock_tries_total", sm.Locks.Tries)
	add("dbsim_lock_waits_total", sm.Locks.Waits)
	add("dbsim_lock_spin_cycles_total", sm.Locks.SpinCycles)
	add("dbsim_locktable_acquires_total", sm.Locks.Acquires)
	add("dbsim_locktable_contended_acquires_total", sm.Locks.Contended)
	add("dbsim_locktable_handoffs_total", sm.Locks.Handoffs)
	add("dbsim_htm_begins_total", sm.HTM.Begins)
	add("dbsim_htm_commits_total", sm.HTM.Commits)
	add("dbsim_htm_fallbacks_total", sm.HTM.Fallbacks)
	s.totals["dbsim_htm_aborts_total"+mergeLabels(sm.Tags, "cause", "conflict")] += sm.HTM.ConflictAborts
	s.totals["dbsim_htm_aborts_total"+mergeLabels(sm.Tags, "cause", "capacity")] += sm.HTM.CapacityAborts
	s.totals["dbsim_htm_aborts_total"+mergeLabels(sm.Tags, "cause", "explicit")] += sm.HTM.ExplicitAborts
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		s.totals[fmt.Sprintf("dbsim_breakdown_cycles_total%s", mergeLabels(sm.Tags, "component", c.String()))] += uint64(sm.Breakdown[c])
	}
	for name, v := range sm.Probes {
		s.totals[fmt.Sprintf("dbsim_probe_total%s", mergeLabels(sm.Tags, "probe", name))] += v
	}
	return nil
}

// Handler returns the scrape handler.
func (s *PromSink) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.Render())
	})
}

// promCheckpoint renders the process-wide checkpoint activity counters.
// They come straight from internal/checkpoint's cumulative counters at
// scrape time — not from samples — so the page reflects captures taken
// between telemetry intervals (and before the first sample lands).
func promCheckpoint(sb *strings.Builder) {
	n, b, secs := checkpoint.Stats()
	c := func(name, help string, v string) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, v)
	}
	c("dbsim_checkpoint_captures_total", "Checkpoints written by this process.", fmt.Sprint(n))
	c("dbsim_checkpoint_bytes_total", "Bytes of checkpoint images written.", fmt.Sprint(b))
	c("dbsim_checkpoint_write_seconds_total", "Wall-clock seconds spent writing checkpoints.", fmt.Sprintf("%g", secs))
}

// PromBuildInfo renders a `<name>{version=...,revision=...,go_version=...} 1`
// identity gauge (the Prometheus *_build_info convention) from the binary's
// embedded module/VCS metadata, so dashboards can correlate metric shifts
// with deploys of a new binary.
func PromBuildInfo(sb *strings.Builder, name string) {
	version, revision, goVersion := obs.BuildInfo()
	fmt.Fprintf(sb, "# HELP %s Build and version metadata of the serving binary.\n# TYPE %s gauge\n%s{version=%q,revision=%q,go_version=%q} 1\n",
		name, name, name, version, revision, goVersion)
}

// MountPprof registers the runtime profiling endpoints under /debug/pprof/
// on mux (explicitly — none of our binaries use http.DefaultServeMux, so
// net/http/pprof's import side effect alone would register nothing useful).
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Render returns the current exposition page.
func (s *PromSink) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sb strings.Builder
	PromBuildInfo(&sb, "dbsim_build_info")
	if s.last == nil {
		promCheckpoint(&sb)
		sb.WriteString("# no samples yet\n")
		return sb.String()
	}
	sm := s.last
	lbl := labelString(sm.Tags)
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s%s %g\n", name, help, name, name, lbl, v)
	}
	gauge("dbsim_cycle", "Simulated machine cycle at the last sample.", float64(sm.Cycle))
	gauge("dbsim_interval_cycles", "Length of the last sampling interval in cycles.", float64(sm.Cycles))
	gauge("dbsim_interval_ipc", "Retired IPC per processor over the last interval.", sm.IPC)
	gauge("dbsim_interval_l1i_mpki", "L1I misses per kilo-instruction over the last interval.", sm.L1IMisses)
	gauge("dbsim_interval_l1d_mpki", "L1D misses per kilo-instruction over the last interval.", sm.L1DMisses)
	gauge("dbsim_interval_l2_mpki", "L2 misses per kilo-instruction over the last interval.", sm.L2Misses)
	gauge("dbsim_interval_mesh_avg_latency_cycles", "Average mesh message latency over the last interval.", sm.Mesh.AvgLatency)
	for _, cs := range sm.Cores {
		fmt.Fprintf(&sb, "dbsim_core_interval_ipc%s %g\n", mergeLabels(sm.Tags, "core", fmt.Sprint(cs.ID)), cs.IPC)
	}

	names := make([]string, 0, len(s.totals))
	for n := range s.totals {
		names = append(names, n)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, n := range names {
		base, _, _ := strings.Cut(n, "{")
		if !typed[base] {
			fmt.Fprintf(&sb, "# TYPE %s counter\n", base)
			typed[base] = true
		}
		fmt.Fprintf(&sb, "%s %d\n", n, s.totals[n])
	}
	promCheckpoint(&sb)
	return sb.String()
}

// Close implements Sink, shutting the HTTP server down if one was
// started.
func (s *PromSink) Close() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// labelString renders tags as a Prometheus label set ("" when empty).
func labelString(tags map[string]string) string {
	return mergeLabels(tags, "", "")
}

// mergeLabels renders tags plus one extra pair as a sorted label set.
func mergeLabels(tags map[string]string, extraK, extraV string) string {
	keys := make([]string, 0, len(tags)+1)
	for k := range tags {
		keys = append(keys, k)
	}
	if extraK != "" {
		keys = append(keys, extraK)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := tags[k]
		if k == extraK {
			v = extraV
		}
		fmt.Fprintf(&sb, "%s=%q", sanitizeLabelName(k), v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// sanitizeLabelName maps arbitrary tag keys onto the Prometheus label
// grammar [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(k string) string {
	out := []byte(k)
	for i, c := range out {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
