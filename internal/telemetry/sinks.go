package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"repro/internal/stats"
)

// JSONLSink writes one JSON object per sample, newline-delimited — the
// full record including histograms, tags, per-core rows and probes.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
}

// NewJSONLSink wraps wc. The sink buffers; Close flushes.
func NewJSONLSink(wc io.WriteCloser) *JSONLSink {
	bw := bufio.NewWriter(wc)
	return &JSONLSink{w: bw, c: wc, enc: json.NewEncoder(bw)}
}

// OpenJSONLSink creates (truncating) a JSONL series file at path,
// creating missing parent directories.
func OpenJSONLSink(path string) (*JSONLSink, error) {
	f, err := CreateFile(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Write implements Sink.
func (s *JSONLSink) Write(sm *Sample) error { return s.enc.Encode(sm) }

// Close implements Sink.
func (s *JSONLSink) Close() error {
	ferr := s.w.Flush()
	cerr := s.c.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// CSVSink writes the scalar fields of each sample as one CSV row
// (histograms and per-core rows are left to the JSONL sink). The column
// set — including probe columns — is fixed by the first sample written.
type CSVSink struct {
	w      *csv.Writer
	c      io.Closer
	probes []string // probe column order, fixed at first write
	wrote  bool
}

// NewCSVSink wraps wc.
func NewCSVSink(wc io.WriteCloser) *CSVSink {
	return &CSVSink{w: csv.NewWriter(wc), c: wc}
}

// OpenCSVSink creates (truncating) a CSV series file at path, creating
// missing parent directories.
func OpenCSVSink(path string) (*CSVSink, error) {
	f, err := CreateFile(path)
	if err != nil {
		return nil, err
	}
	return NewCSVSink(f), nil
}

// Write implements Sink.
func (s *CSVSink) Write(sm *Sample) error {
	if !s.wrote {
		for name := range sm.Probes {
			s.probes = append(s.probes, name)
		}
		sort.Strings(s.probes)
		if err := s.w.Write(s.header()); err != nil {
			return err
		}
		s.wrote = true
	}
	return s.w.Write(s.row(sm))
}

func (s *CSVSink) header() []string {
	cols := []string{"seq", "cycle", "cycles", "instructions", "ipc", "idle"}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		cols = append(cols, "bk_"+c.String())
	}
	cols = append(cols,
		"l1i_mpki", "l1d_mpki", "l2_mpki", "sbuf_hits", "sbuf_misses",
		"dir_reads", "dir_reads_dirty", "dir_writes", "dir_writes_shared",
		"dir_upgrades", "dir_writebacks", "dir_flushes", "dir_migratory",
		"mesh_messages", "mesh_flits", "mesh_queue_cycles", "mesh_avg_latency",
		"lock_tries", "lock_waits", "lock_spin_cycles",
	)
	for _, p := range s.probes {
		cols = append(cols, "probe_"+p)
	}
	return cols
}

func (s *CSVSink) row(sm *Sample) []string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	row := []string{
		strconv.Itoa(sm.Seq), u(sm.Cycle), u(sm.Cycles),
		u(sm.Instructions), f(sm.IPC), u(sm.Idle),
	}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		row = append(row, f(sm.Breakdown[c]))
	}
	row = append(row,
		f(sm.L1IMisses), f(sm.L1DMisses), f(sm.L2Misses),
		u(sm.StreamBufHits), u(sm.StreamBufMisses),
		u(sm.Dir.Reads), u(sm.Dir.ReadsDirty), u(sm.Dir.Writes), u(sm.Dir.WritesShared),
		u(sm.Dir.Upgrades), u(sm.Dir.Writebacks), u(sm.Dir.Flushes), u(sm.Dir.MigratoryTransfers),
		u(sm.Mesh.Messages), u(sm.Mesh.Flits), u(sm.Mesh.QueueCycles), f(sm.Mesh.AvgLatency),
		u(sm.Locks.Tries), u(sm.Locks.Waits), u(sm.Locks.SpinCycles),
	)
	for _, p := range s.probes {
		row = append(row, u(sm.Probes[p]))
	}
	return row
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	s.w.Flush()
	ferr := s.w.Error()
	cerr := s.c.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// FuncSink adapts a function to the Sink interface (tests, ad-hoc
// aggregation).
type FuncSink func(s *Sample) error

// Write implements Sink.
func (f FuncSink) Write(s *Sample) error { return f(s) }

// Close implements Sink.
func (f FuncSink) Close() error { return nil }
