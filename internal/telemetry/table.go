package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CreateFile creates path for writing, creating missing parent
// directories first. Sinks and exporters route file creation through
// this so pointing an output flag at a not-yet-existing directory works
// and a failure names the directory instead of surfacing a bare open
// error.
func CreateFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" && dir != string(filepath.Separator) {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, fmt.Errorf("telemetry: creating output directory %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: creating %s: %w", path, err)
	}
	return f, nil
}

// Table is a generic named aggregate table (column header plus string
// rows) that renders to CSV or JSON — the export shape for end-of-run
// aggregates, as opposed to the per-interval Sample stream.
type Table struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTablesCSV writes the tables to path as CSV: each table preceded
// by a "# name" comment row, then its header, then its rows.
func WriteTablesCSV(path string, tables []*Table) error {
	f, err := CreateFile(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	for _, t := range tables {
		if err := w.Write([]string{"# " + t.Name}); err != nil {
			f.Close()
			return err
		}
		if err := w.Write(t.Columns); err != nil {
			f.Close()
			return err
		}
		for _, row := range t.Rows {
			if err := w.Write(row); err != nil {
				f.Close()
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTablesJSON writes the tables to path as one indented JSON array.
func WriteTablesJSON(path string, tables []*Table) error {
	f, err := CreateFile(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tables); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
