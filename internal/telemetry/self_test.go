package telemetry

import (
	"strings"
	"testing"
)

func TestCollectSelfPopulates(t *testing.T) {
	s := CollectSelf(7)
	if s.HeapAllocBytes == 0 || s.HeapSysBytes == 0 {
		t.Fatalf("heap gauges empty: %+v", s)
	}
	if s.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", s.Goroutines)
	}
	if s.MaxRSSKB <= 0 {
		t.Fatalf("max rss = %d, want > 0 (rusage must be readable)", s.MaxRSSKB)
	}
	if s.PointsDone != 7 {
		t.Fatalf("points done = %d, want 7", s.PointsDone)
	}
	if s.UnixMilli == 0 {
		t.Fatal("timestamp missing")
	}
}

func TestSelfCollectorRate(t *testing.T) {
	points := uint64(0)
	var seen []*SelfSample
	c := &SelfCollector{
		Points:   func() uint64 { return points },
		OnSample: func(s *SelfSample) { seen = append(seen, s) },
	}
	first := c.Sample()
	if first.PointsPerSec != 0 {
		t.Fatalf("first sample rate = %v, want 0 (no previous window)", first.PointsPerSec)
	}
	// Fake the previous sample's timestamp back so the rate window is
	// exactly 2 seconds of wall clock with 10 points of progress.
	c.mu.Lock()
	c.last.UnixMilli -= 2000
	c.mu.Unlock()
	points = 10
	second := c.Sample()
	if second.PointsPerSec < 4.5 || second.PointsPerSec > 5.5 {
		t.Fatalf("rate = %v points/sec, want ~5", second.PointsPerSec)
	}
	if got := c.Last(); got != second {
		t.Fatal("Last() is not the most recent sample")
	}
	if len(seen) != 2 {
		t.Fatalf("OnSample saw %d samples, want 2", len(seen))
	}
}

func TestPromSelfExposition(t *testing.T) {
	s := &SelfSample{
		UnixMilli: 1234, HeapAllocBytes: 1 << 20, Goroutines: 9,
		UserCPUSeconds: 1.5, MaxRSSKB: 2048, PointsDone: 3, PointsPerSec: 0.5,
	}
	var sb strings.Builder
	PromSelf(&sb, "sweepd_worker_", s, map[string]string{"worker": "w1"})
	out := sb.String()
	for _, want := range []string{
		`sweepd_worker_self_heap_alloc_bytes{worker="w1"} 1.048576e+06`,
		`sweepd_worker_self_goroutines{worker="w1"} 9`,
		`sweepd_worker_self_user_cpu_seconds{worker="w1"} 1.5`,
		`sweepd_worker_self_max_rss_kb{worker="w1"} 2048`,
		`sweepd_worker_self_points_done{worker="w1"} 3`,
		`sweepd_worker_self_points_per_sec{worker="w1"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nil sample renders nothing (worker hasn't heartbeat yet).
	var empty strings.Builder
	PromSelf(&empty, "x_", nil, nil)
	if empty.Len() != 0 {
		t.Fatalf("nil sample rendered %q", empty.String())
	}
}
