package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// SeriesFileName returns the canonical file name for one run point's JSONL
// telemetry series: <id>__<label>__<hash>.jsonl. The label is mapped onto
// the portable filename alphabet, and the hash is over the *raw* (id,
// label) pair, so two labels that sanitize to the same string — "cfg/a"
// and "cfg_a", say — can no longer collide on one file. Sweep tools key
// their journals on the same hash, which makes the series file findable
// from a journal record.
func SeriesFileName(id, label string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, label)
	return fmt.Sprintf("%s__%s__%s.jsonl", id, clean, SeriesHash(id, label))
}

// SeriesHash returns the 8-hex-digit collision guard used in series file
// names: a truncated SHA-256 over the NUL-separated (id, label) pair.
func SeriesHash(id, label string) string {
	sum := sha256.Sum256([]byte(id + "\x00" + label))
	return hex.EncodeToString(sum[:4])
}
