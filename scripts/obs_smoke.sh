#!/usr/bin/env bash
# Observability smoke test: run a small remote sweep through sweepd + a
# checkpointing worker with every process logging structured JSON and
# recording spans, SIGKILL the worker mid-point (after a checkpoint has
# shipped), and let a replacement finish the job. Then assert the whole
# observability plane held up:
#
#   - every process's stderr is valid structured JSON (scripts/logcheck),
#     collectively carrying the job/spec_hash/worker/lease/trace keys;
#   - the per-process span logs stitch into ONE connected trace with zero
#     orphans (sweeptrace -strict) containing the expiry -> re-lease ->
#     takeover chain, and export as a valid Chrome/Perfetto trace
#     (scripts/tracecheck);
#   - the results API carries per-point provenance attributing the point
#     to the replacement worker with the right spec hash;
#   - /metrics serves the sweepd_build_info gauge;
#   - the merged result file is still byte-identical to a serial local
#     run (provenance never leaks into the canonical bytes).
#
# Used by CI; runnable locally:
#
#   scripts/obs_smoke.sh [workdir]
#
# Environment:
#   FIG    experiment to sweep (default fig2a — one point, so the kill
#          provably lands on the traced point)
#   PORT   sweepd port (default 8066)
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
fig="${FIG:-fig2a}"
port="${PORT:-8066}"
addr="127.0.0.1:$port"
ledger="$work/ledger.jsonl"

go build -o "$work/sweep" ./cmd/sweep
go build -o "$work/sweepd" ./cmd/sweepd
go build -o "$work/sweepworker" ./cmd/sweepworker
go build -o "$work/sweeptrace" ./cmd/sweeptrace
rm -f "$ledger"

cleanup() {
  kill "${sweepd_pid:-}" "${w1_pid:-}" "${w2_pid:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

fetch() {
  if command -v curl >/dev/null 2>&1; then
    curl -fsS "$1" 2>/dev/null
  else
    wget -qO- "$1" 2>/dev/null
  fi
}

echo "== serial local baseline ($fig, quick scale) =="
"$work/sweep" -fig "$fig" -scale quick -merged "$work/baseline.json" \
  >"$work/baseline.out" 2>"$work/baseline.err"
test -s "$work/baseline.json" || { echo "FAIL: no baseline merged output" >&2; exit 1; }

"$work/sweepd" -addr "$addr" -ledger "$ledger" -lease-ttl 5s -expire-every 1s \
  -span-log "$work/sweepd.spans.jsonl" 2>"$work/sweepd.log" &
sweepd_pid=$!
sleep 1

"$work/sweepworker" -server "http://$addr" -name w1 -heartbeat 500ms \
  -checkpoint-dir "$work/w1-ckpts" -span-log "$work/w1.spans.jsonl" \
  2>"$work/w1.log" &
w1_pid=$!

echo "== traced sweep: sweepd pid $sweepd_pid, worker w1 ($w1_pid) =="
"$work/sweep" -remote "http://$addr" -job obs -fig "$fig" -scale quick \
  -span-log "$work/client.spans.jsonl" -merged "$work/remote.json" \
  >"$work/client.out" 2>"$work/client.err" &
client_pid=$!

# SIGKILL w1 only after a checkpoint has shipped, so the takeover path —
# the interesting part of the trace — provably runs.
shipped=0
for _ in $(seq 1 240); do
  if grep -q '"type":"done"' "$ledger" 2>/dev/null; then break; fi
  if fetch "http://$addr/metrics" | grep -Eq '^sweepd_checkpoints_stored_total [1-9]'; then
    shipped=1
    break
  fi
  sleep 0.5
done
if [[ "$shipped" != 1 ]]; then
  echo "FAIL: point finished (or timed out) before any checkpoint shipped; scenario degenerate" >&2
  exit 1
fi
kill -9 "$w1_pid" 2>/dev/null || true
echo "killed worker w1 (pid $w1_pid) mid-point, checkpoint already shipped"

"$work/sweepworker" -server "http://$addr" -name w2 -heartbeat 500ms \
  -checkpoint-dir "$work/w2-ckpts" -span-log "$work/w2.spans.jsonl" \
  2>"$work/w2.log" &
w2_pid=$!

client=0
wait "$client_pid" || client=$?
echo "client exited $client"
tail -n 2 "$work/client.err" || true
if [[ "$client" != 0 ]]; then
  echo "FAIL: sweep client exited $client, want 0" >&2
  exit 1
fi

echo "== merged results vs serial baseline (provenance must not leak) =="
if ! cmp "$work/baseline.json" "$work/remote.json"; then
  echo "FAIL: remote merged results differ from the serial local run" >&2
  exit 1
fi
echo "OK: merged results byte-identical"

echo "== structured logs: every line JSON, correlation keys present =="
go run ./scripts/logcheck -require job,spec_hash,worker,lease,trace \
  "$work/sweepd.log" "$work/w1.log" "$work/w2.log" "$work/client.err"
go run ./scripts/logcheck -component sweepd "$work/sweepd.log"

echo "== span logs: stitch into one connected trace =="
"$work/sweeptrace" -strict -o "$work/stitched.trace.json" \
  "$work/sweepd.spans.jsonl" "$work/client.spans.jsonl" \
  "$work/w1.spans.jsonl" "$work/w2.spans.jsonl" \
  >"$work/trace.txt" 2>"$work/trace.err"
grep -q '"traces":1' "$work/trace.err" || {
  echo "FAIL: stitched span logs did not form exactly one trace" >&2
  cat "$work/trace.err" >&2
  exit 1
}
for span in submit lease expiry takeover merge; do
  grep -q "\"name\":\"$span\"" "$work/sweepd.spans.jsonl" || {
    echo "FAIL: sweepd span log has no $span span" >&2
    exit 1
  }
done
grep -q '"name":"run"' "$work/w1.spans.jsonl" || {
  echo "FAIL: killed worker w1 left no run span" >&2
  exit 1
}
grep -q '"name":"run"' "$work/w2.spans.jsonl" || {
  echo "FAIL: replacement worker w2 left no run span" >&2
  exit 1
}
echo "OK: one trace, zero orphans, expiry->takeover chain recorded"

echo "== exported Chrome trace validates =="
go run ./scripts/tracecheck "$work/stitched.trace.json"

echo "== results API carries provenance for the replacement worker =="
results="$(fetch "http://$addr/api/v1/jobs/obs/results")"
echo "$results" | grep -q '"worker":"w2"' || {
  echo "FAIL: results provenance not attributed to w2" >&2
  echo "$results" | head -c 2000 >&2
  exit 1
}
echo "$results" | grep -q '"spec_hash":"[0-9a-f]' || {
  echo "FAIL: results provenance has no spec hash" >&2
  exit 1
}
echo "OK: provenance attributes the point to w2 with a spec hash"

echo "== build-info gauge on /metrics =="
fetch "http://$addr/metrics" | grep -q '^sweepd_build_info{' || {
  echo "FAIL: sweepd_build_info gauge missing from /metrics" >&2
  exit 1
}
echo "OK: sweepd_build_info present"
echo "PASS: obs smoke"
