// Command tracecheck validates a Chrome trace-event JSON file written by
// dbsim -trace-events against the subset of the format the exporter
// emits, so CI catches schema regressions before a human loads a broken
// trace into Perfetto. Checks:
//
//   - the top level is a JSON object with a traceEvents array;
//   - every event has a known phase ("X", "i", "s", "f", "M") and a
//     non-negative ts/pid/tid;
//   - complete slices ("X") have dur >= 1;
//   - flow starts ("s") and ends ("f") are paired per id, and ends carry
//     bp:"e" (Perfetto drops unbound flow ends silently otherwise);
//   - pid 0 (cpu) and, when directory events exist, pid 1 (dir) have
//     process_name metadata, and every tid used has thread_name metadata;
//   - the embedded dbsimAggregates block, when present, parses.
//
// Exit status: 0 when the file passes, 1 with one line per violation on
// stderr when it does not, 2 on usage errors.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	ID   string         `json:"id"`
	BP   string         `json:"bp"`
	Args map[string]any `json:"args"`
}

type file struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	Aggregates      json.RawMessage `json:"dbsimAggregates"`
	TraceEvents     []event         `json:"traceEvents"`
}

type aggregates struct {
	Categories []string `json:"categories"`
	Sites      []struct {
		PC    string    `json:"pc"`
		ByCat []float64 `json:"by_cat"`
	} `json:"stall_sites"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "tracecheck: usage: tracecheck trace.json")
		os.Exit(2)
	}
	path := os.Args[1]
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
	var f file
	if err := json.Unmarshal(raw, &f); err != nil {
		log.Printf("%s: not a trace-event JSON object: %v", path, err)
		os.Exit(1)
	}

	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	if f.TraceEvents == nil {
		fail("missing traceEvents array")
	}
	if len(f.TraceEvents) == 0 {
		fail("traceEvents is empty")
	}

	// Track metadata coverage and flow pairing while walking the events.
	procNamed := map[int]bool{}
	threadNamed := map[[2]int]bool{}
	usedThreads := map[[2]int]bool{}
	flowStarts := map[string]int{}
	flowEnds := map[string]int{}
	for i, ev := range f.TraceEvents {
		where := fmt.Sprintf("event %d (%s %q)", i, ev.Ph, ev.Name)
		if ev.Pid == nil || ev.Tid == nil {
			fail("%s: missing pid/tid", where)
			continue
		}
		if *ev.Pid < 0 || *ev.Tid < 0 {
			fail("%s: negative pid/tid", where)
		}
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procNamed[*ev.Pid] = true
			case "thread_name":
				threadNamed[[2]int{*ev.Pid, *ev.Tid}] = true
			default:
				fail("%s: unknown metadata record", where)
			}
			continue
		case "X", "i", "s", "f":
		default:
			fail("%s: unknown phase", where)
			continue
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			fail("%s: missing or negative ts", where)
		}
		usedThreads[[2]int{*ev.Pid, *ev.Tid}] = true
		switch ev.Ph {
		case "X":
			if ev.Dur < 1 {
				fail("%s: complete slice without dur >= 1", where)
			}
		case "s":
			if ev.ID == "" {
				fail("%s: flow start without id", where)
			}
			flowStarts[ev.ID]++
		case "f":
			if ev.ID == "" {
				fail("%s: flow end without id", where)
			}
			if ev.BP != "e" {
				fail("%s: flow end without bp:\"e\"", where)
			}
			flowEnds[ev.ID]++
		}
	}
	for id, n := range flowStarts {
		if flowEnds[id] != n {
			fail("flow id %s: %d starts but %d ends", id, n, flowEnds[id])
		}
	}
	for id, n := range flowEnds {
		if _, ok := flowStarts[id]; !ok {
			fail("flow id %s: %d ends without a start", id, n)
		}
	}
	for key := range usedThreads {
		if !procNamed[key[0]] {
			fail("pid %d used without process_name metadata", key[0])
			procNamed[key[0]] = true // report each pid once
		}
		if !threadNamed[key] {
			fail("pid %d tid %d used without thread_name metadata", key[0], key[1])
		}
	}

	if len(f.Aggregates) > 0 {
		var agg aggregates
		if err := json.Unmarshal(f.Aggregates, &agg); err != nil {
			fail("dbsimAggregates does not parse: %v", err)
		} else {
			for _, s := range agg.Sites {
				if len(s.ByCat) != len(agg.Categories) {
					fail("aggregate site %s: %d by_cat values for %d categories",
						s.PC, len(s.ByCat), len(agg.Categories))
					break
				}
			}
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %s\n", path, v)
		}
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s: %d events OK\n", path, len(f.TraceEvents))
}
