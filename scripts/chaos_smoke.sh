#!/usr/bin/env bash
# Chaos smoke test for the distributed sweep service: run a grid through
# sweepd + two sweepworkers while SIGKILLing one worker mid-point and
# SIGKILLing + restarting sweepd mid-sweep (same ledger, same port). The
# client must ride out all of it and exit 0, the merged results must be
# byte-identical to a serial local run of the same grid, the ledger must
# record each point's terminal state exactly once, and a repeat submission
# must be served entirely from the result cache.
#
# A second scenario exercises checkpointed preemption: a worker running
# with -checkpoint-dir is SIGKILLed mid-point after its captures have
# shipped to sweepd, and a fresh worker must take the point over FROM THE
# CHECKPOINT (ledger records "resume") rather than restarting it — with
# the merged result still byte-identical to the serial baseline. Used by
# CI; runnable locally:
#
#   scripts/chaos_smoke.sh [workdir]
#
# Environment:
#   FIGS   comma-separated experiment grid (default fig2a,fig3a,tbl-miss)
#   PORT   sweepd port (default 8055)
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
figs="${FIGS:-fig2a,fig3a,tbl-miss}"
port="${PORT:-8055}"
addr="127.0.0.1:$port"
ledger="$work/ledger.jsonl"
npts="$(echo "$figs" | tr ',' '\n' | grep -c .)"

go build -o "$work/sweep" ./cmd/sweep
go build -o "$work/sweepd" ./cmd/sweepd
go build -o "$work/sweepworker" ./cmd/sweepworker
rm -f "$ledger"

cleanup() {
  kill "${sweepd_pid:-}" "${w1_pid:-}" "${w2_pid:-}" "${w3_pid:-}" "${w4_pid:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

# fetch_metrics URL — curl in CI, wget as a local fallback.
fetch_metrics() {
  if command -v curl >/dev/null 2>&1; then
    curl -fsS "$1" 2>/dev/null
  else
    wget -qO- "$1" 2>/dev/null
  fi
}

echo "== serial local baseline ($figs, quick scale) =="
"$work/sweep" -fig "$figs" -scale quick -merged "$work/baseline.json" \
  >"$work/baseline.out" 2>"$work/baseline.err"
test -s "$work/baseline.json" || { echo "FAIL: no baseline merged output" >&2; exit 1; }

start_sweepd() {
  "$work/sweepd" -addr "$addr" -ledger "$ledger" -lease-ttl 10s -expire-every 1s \
    >>"$work/sweepd.log" 2>&1 &
  sweepd_pid=$!
}

start_sweepd
"$work/sweepworker" -server "http://$addr" -name w1 -heartbeat 2s \
  -checkpoint-dir "$work/w1-ckpts" >>"$work/w1.log" 2>&1 &
w1_pid=$!
"$work/sweepworker" -server "http://$addr" -name w2 -heartbeat 2s \
  -checkpoint-dir "$work/w2-ckpts" >>"$work/w2.log" 2>&1 &
w2_pid=$!

echo "== chaos sweep: sweepd pid $sweepd_pid, workers $w1_pid/$w2_pid =="
"$work/sweep" -remote "http://$addr" -job chaos -fig "$figs" -scale quick \
  -merged "$work/remote.json" >"$work/client.out" 2>"$work/client.err" &
client_pid=$!

# Chaos 1: SIGKILL a worker while it holds a lease. Its point sits leased
# until the TTL expires, then gets re-issued to the survivor.
sleep 4
kill -9 "$w1_pid" 2>/dev/null || true
echo "killed worker w1 (pid $w1_pid) mid-point"

# Chaos 2: SIGKILL sweepd once at least one point is done, then restart it
# on the same ledger and port. Replay rebuilds the state machine; the
# client and surviving worker retry through the outage.
for _ in $(seq 1 120); do
  if [[ -s "$ledger" ]] && grep -q '"type":"done"' "$ledger"; then break; fi
  sleep 0.5
done
grep -q '"type":"done"' "$ledger" || { echo "FAIL: no point completed before restart window" >&2; exit 1; }
kill -9 "$sweepd_pid" 2>/dev/null || true
echo "killed sweepd (pid $sweepd_pid) mid-sweep; restarting on the same ledger"
sleep 1
start_sweepd
echo "sweepd restarted (pid $sweepd_pid)"

client=0
wait "$client_pid" || client=$?
echo "client exited $client"
tail -n 3 "$work/client.err" || true
if [[ "$client" != 0 ]]; then
  echo "FAIL: chaos sweep client exited $client, want 0" >&2
  exit 1
fi

echo "== merged results: chaos run vs serial baseline =="
if ! cmp "$work/baseline.json" "$work/remote.json"; then
  echo "FAIL: distributed merged results differ from the serial local run" >&2
  exit 1
fi
echo "OK: merged results byte-identical"

echo "== ledger: exactly one terminal record per point =="
terminal="$(grep -c '"type":"done"\|"type":"failed"' "$ledger")"
if [[ "$terminal" != "$npts" ]]; then
  echo "FAIL: ledger has $terminal terminal records, want $npts" >&2
  exit 1
fi
dups="$(grep -o '"type":"\(done\|failed\)","hash":"[0-9a-f]*"' "$ledger" | sort | uniq -d)"
if [[ -n "$dups" ]]; then
  echo "FAIL: duplicate terminal ledger records: $dups" >&2
  exit 1
fi
echo "OK: $terminal points, each recorded exactly once"

echo "== repeat submission served from cache =="
"$work/sweep" -remote "http://$addr" -job chaos-again -fig "$figs" -scale quick \
  -merged "$work/cached.json" >"$work/client2.out" 2>"$work/client2.err"
if ! cmp -s "$work/baseline.json" "$work/cached.json"; then
  echo "FAIL: cached merged results differ from baseline" >&2
  exit 1
fi
cached="$(grep -c 'done (result cache)' "$work/client2.err" || true)"
if [[ "$cached" != "$npts" ]]; then
  echo "FAIL: $cached of $npts points served from cache on resubmission" >&2
  tail -n 20 "$work/client2.err" >&2
  exit 1
fi
echo "OK: all $npts points served from the result cache"

# ---------------------------------------------------------------------------
# Checkpoint kill-mid-point: a checkpointing worker is SIGKILLed after its
# captures have shipped; the replacement must RESUME the point from the
# shipped checkpoint (ledger "resume" record), not restart it, and still
# produce the byte-identical result.
# ---------------------------------------------------------------------------
ck_fig="${figs%%,*}"
ledger2="$work/ledger-ck.jsonl"
rm -f "$ledger2"

echo "== checkpoint takeover: serial baseline ($ck_fig) =="
"$work/sweep" -fig "$ck_fig" -scale quick -merged "$work/baseline-ck.json" \
  >"$work/baseline-ck.out" 2>"$work/baseline-ck.err"
test -s "$work/baseline-ck.json" || { echo "FAIL: no checkpoint-scenario baseline" >&2; exit 1; }

# Fresh sweepd on a fresh ledger (the previous one has $ck_fig cached) and
# a short TTL so the takeover happens quickly after the SIGKILL.
kill -9 "${sweepd_pid:-}" "${w2_pid:-}" 2>/dev/null || true
"$work/sweepd" -addr "$addr" -ledger "$ledger2" -lease-ttl 5s -expire-every 1s \
  >>"$work/sweepd-ck.log" 2>&1 &
sweepd_pid=$!
sleep 1

"$work/sweepworker" -server "http://$addr" -name w3 -heartbeat 500ms \
  -checkpoint-dir "$work/w3-ckpts" >>"$work/w3.log" 2>&1 &
w3_pid=$!
echo "== checkpoint takeover: sweepd pid $sweepd_pid, checkpointing worker w3 ($w3_pid) =="
"$work/sweep" -remote "http://$addr" -job ck -fig "$ck_fig" -scale quick \
  -merged "$work/remote-ck.json" >"$work/client-ck.out" 2>"$work/client-ck.err" &
client_pid=$!

# Wait until at least one capture has shipped to sweepd — the point must
# still be in flight, or the scenario is degenerate.
shipped=0
for _ in $(seq 1 240); do
  if grep -q '"type":"done"' "$ledger2" 2>/dev/null; then break; fi
  if fetch_metrics "http://$addr/metrics" | grep -Eq '^sweepd_checkpoints_stored_total [1-9]'; then
    shipped=1
    break
  fi
  sleep 0.5
done
if [[ "$shipped" != 1 ]]; then
  echo "FAIL: point finished (or timed out) before any checkpoint shipped; scenario degenerate" >&2
  exit 1
fi
kill -9 "$w3_pid" 2>/dev/null || true
echo "killed checkpointing worker w3 (pid $w3_pid) mid-point, captures already shipped"

# The replacement worker gets its own empty checkpoint dir: every byte of
# resumed progress must come through sweepd's shipped copies.
"$work/sweepworker" -server "http://$addr" -name w4 -heartbeat 500ms \
  -checkpoint-dir "$work/w4-ckpts" >>"$work/w4.log" 2>&1 &
w4_pid=$!

client=0
wait "$client_pid" || client=$?
echo "checkpoint-takeover client exited $client"
tail -n 3 "$work/client-ck.err" || true
if [[ "$client" != 0 ]]; then
  echo "FAIL: checkpoint-takeover client exited $client, want 0" >&2
  exit 1
fi

echo "== checkpoint takeover: ledger must record a resume =="
if ! grep -q '"type":"resume"' "$ledger2"; then
  echo "FAIL: no resume record — takeover restarted from scratch instead of the checkpoint" >&2
  grep -o '"type":"[a-z]*"' "$ledger2" | sort | uniq -c >&2 || true
  exit 1
fi
resume_line="$(grep '"type":"resume"' "$ledger2" | head -n 1)"
echo "$resume_line" | grep -q '"worker":"w4"' || {
  echo "FAIL: resume record not attributed to the replacement worker: $resume_line" >&2
  exit 1
}
echo "$resume_line" | grep -q '"from_cycle":[1-9]' || {
  echo "FAIL: resume record has no positive from_cycle: $resume_line" >&2
  exit 1
}
echo "OK: $resume_line"

echo "== checkpoint takeover: merged result vs serial baseline =="
if ! cmp "$work/baseline-ck.json" "$work/remote-ck.json"; then
  echo "FAIL: resumed-run merged results differ from the serial local run" >&2
  exit 1
fi
echo "OK: resumed run byte-identical to serial baseline"
echo "PASS: chaos smoke"
