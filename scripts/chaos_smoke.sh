#!/usr/bin/env bash
# Chaos smoke test for the distributed sweep service: run a grid through
# sweepd + two sweepworkers while SIGKILLing one worker mid-point and
# SIGKILLing + restarting sweepd mid-sweep (same ledger, same port). The
# client must ride out all of it and exit 0, the merged results must be
# byte-identical to a serial local run of the same grid, the ledger must
# record each point's terminal state exactly once, and a repeat submission
# must be served entirely from the result cache. Used by CI; runnable
# locally:
#
#   scripts/chaos_smoke.sh [workdir]
#
# Environment:
#   FIGS   comma-separated experiment grid (default fig2a,fig3a,tbl-miss)
#   PORT   sweepd port (default 8055)
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
figs="${FIGS:-fig2a,fig3a,tbl-miss}"
port="${PORT:-8055}"
addr="127.0.0.1:$port"
ledger="$work/ledger.jsonl"
npts="$(echo "$figs" | tr ',' '\n' | grep -c .)"

go build -o "$work/sweep" ./cmd/sweep
go build -o "$work/sweepd" ./cmd/sweepd
go build -o "$work/sweepworker" ./cmd/sweepworker
rm -f "$ledger"

cleanup() {
  kill "${sweepd_pid:-}" "${w1_pid:-}" "${w2_pid:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== serial local baseline ($figs, quick scale) =="
"$work/sweep" -fig "$figs" -scale quick -merged "$work/baseline.json" \
  >"$work/baseline.out" 2>"$work/baseline.err"
test -s "$work/baseline.json" || { echo "FAIL: no baseline merged output" >&2; exit 1; }

start_sweepd() {
  "$work/sweepd" -addr "$addr" -ledger "$ledger" -lease-ttl 10s -expire-every 1s \
    >>"$work/sweepd.log" 2>&1 &
  sweepd_pid=$!
}

start_sweepd
"$work/sweepworker" -server "http://$addr" -name w1 -heartbeat 2s \
  >>"$work/w1.log" 2>&1 &
w1_pid=$!
"$work/sweepworker" -server "http://$addr" -name w2 -heartbeat 2s \
  >>"$work/w2.log" 2>&1 &
w2_pid=$!

echo "== chaos sweep: sweepd pid $sweepd_pid, workers $w1_pid/$w2_pid =="
"$work/sweep" -remote "http://$addr" -job chaos -fig "$figs" -scale quick \
  -merged "$work/remote.json" >"$work/client.out" 2>"$work/client.err" &
client_pid=$!

# Chaos 1: SIGKILL a worker while it holds a lease. Its point sits leased
# until the TTL expires, then gets re-issued to the survivor.
sleep 4
kill -9 "$w1_pid" 2>/dev/null || true
echo "killed worker w1 (pid $w1_pid) mid-point"

# Chaos 2: SIGKILL sweepd once at least one point is done, then restart it
# on the same ledger and port. Replay rebuilds the state machine; the
# client and surviving worker retry through the outage.
for _ in $(seq 1 120); do
  if [[ -s "$ledger" ]] && grep -q '"type":"done"' "$ledger"; then break; fi
  sleep 0.5
done
grep -q '"type":"done"' "$ledger" || { echo "FAIL: no point completed before restart window" >&2; exit 1; }
kill -9 "$sweepd_pid" 2>/dev/null || true
echo "killed sweepd (pid $sweepd_pid) mid-sweep; restarting on the same ledger"
sleep 1
start_sweepd
echo "sweepd restarted (pid $sweepd_pid)"

client=0
wait "$client_pid" || client=$?
echo "client exited $client"
tail -n 3 "$work/client.err" || true
if [[ "$client" != 0 ]]; then
  echo "FAIL: chaos sweep client exited $client, want 0" >&2
  exit 1
fi

echo "== merged results: chaos run vs serial baseline =="
if ! cmp "$work/baseline.json" "$work/remote.json"; then
  echo "FAIL: distributed merged results differ from the serial local run" >&2
  exit 1
fi
echo "OK: merged results byte-identical"

echo "== ledger: exactly one terminal record per point =="
terminal="$(grep -c '"type":"done"\|"type":"failed"' "$ledger")"
if [[ "$terminal" != "$npts" ]]; then
  echo "FAIL: ledger has $terminal terminal records, want $npts" >&2
  exit 1
fi
dups="$(grep -o '"type":"\(done\|failed\)","hash":"[0-9a-f]*"' "$ledger" | sort | uniq -d)"
if [[ -n "$dups" ]]; then
  echo "FAIL: duplicate terminal ledger records: $dups" >&2
  exit 1
fi
echo "OK: $terminal points, each recorded exactly once"

echo "== repeat submission served from cache =="
"$work/sweep" -remote "http://$addr" -job chaos-again -fig "$figs" -scale quick \
  -merged "$work/cached.json" >"$work/client2.out" 2>"$work/client2.err"
if ! cmp -s "$work/baseline.json" "$work/cached.json"; then
  echo "FAIL: cached merged results differ from baseline" >&2
  exit 1
fi
cached="$(grep -c 'done (result cache)' "$work/client2.err" || true)"
if [[ "$cached" != "$npts" ]]; then
  echo "FAIL: $cached of $npts points served from cache on resubmission" >&2
  tail -n 20 "$work/client2.err" >&2
  exit 1
fi
echo "OK: all $npts points served from the result cache"
echo "PASS: chaos smoke"
