#!/usr/bin/env bash
# benchdiff.sh — track raw simulator throughput.
#
# Runs BenchmarkSimulatorOLTP/DSS and their Parallel arms (the epoch-
# parallel engine at SimThreads=4) — COUNT repetitions each, default 3,
# medians taken — and rewrites BENCH_SIMULATOR.json with ns/op,
# allocs/op and sim_Minstr/s per benchmark. The previous file's numbers are
# carried into a "previous" block, so the committed JSON always records the
# before/after of the last perf change.
#
#   scripts/benchdiff.sh            # refresh BENCH_SIMULATOR.json
#   scripts/benchdiff.sh -check     # no rewrite: fail if sim_Minstr/s
#                                   # regressed >15% vs the committed file
#
# -check is CI's perf-smoke gate. Single-iteration runs are noisy (~±10%
# across repetitions), which is why medians are compared and the band is a
# generous 15%: it catches "accidentally disabled fast-forward"-sized
# regressions, not percent-level drift.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
BASEFILE=BENCH_SIMULATOR.json
MODE=write
if [ "${1:-}" = "-check" ]; then
    MODE=check
elif [ $# -gt 0 ]; then
    echo "usage: $0 [-check]" >&2
    exit 2
fi

echo "running simulator benchmarks ($COUNT repetitions)..." >&2
out=$(go test -run '^$' -bench 'BenchmarkSimulator(OLTP|DSS)(Parallel)?$' -benchmem -benchtime=1x -count="$COUNT" .)
printf '%s\n' "$out" >&2

# median BENCH UNIT — median of the value column reported just before UNIT
# across BENCH's repetitions ("BenchmarkSimulatorOLTP" or "...OLTP-8" forms).
median() {
    printf '%s\n' "$out" | awk -v b="$1" -v unit="$2" '
        $1 == b || $1 ~ "^"b"-[0-9]+$" {
            for (i = 2; i <= NF; i++) if ($i == unit) print $(i-1)
        }' | sort -g | awk '{ v[NR] = $1 } END {
            if (NR == 0) exit 1
            print v[int((NR + 1) / 2)]
        }'
}

# committed BENCH — the sim_minstr_per_s recorded for BENCH in $BASEFILE.
committed() {
    awk -v b="$1" '
        $0 ~ "\"" b "\"" { inb = 1 }
        inb && /"sim_minstr_per_s"/ {
            gsub(/[^0-9.]/, "", $2); print $2; exit
        }' "$BASEFILE"
}

benches="BenchmarkSimulatorOLTP BenchmarkSimulatorDSS BenchmarkSimulatorOLTPParallel BenchmarkSimulatorDSSParallel"
for b in $benches; do
    if ! median "$b" "ns/op" >/dev/null; then
        echo "benchdiff: no output for $b" >&2
        exit 1
    fi
done

if [ "$MODE" = check ]; then
    [ -f "$BASEFILE" ] || { echo "benchdiff: no committed $BASEFILE to check against" >&2; exit 1; }
    fail=0
    for b in $benches; do
        base=$(committed "$b")
        fresh=$(median "$b" "sim_Minstr/s")
        if [ -z "$base" ]; then
            echo "benchdiff: $b missing from $BASEFILE" >&2
            exit 1
        fi
        awk -v base="$base" -v fresh="$fresh" -v b="$b" 'BEGIN {
            pct = (fresh / base - 1) * 100
            status = (fresh < 0.85 * base) ? "REGRESSION" : "ok"
            printf "%-24s baseline %8.3f  fresh %8.3f  sim_Minstr/s  %+6.1f%%  %s\n",
                b, base, fresh, pct, status
            exit (status == "REGRESSION") ? 1 : 0
        }' || fail=1
    done
    if [ "$fail" -ne 0 ]; then
        echo "benchdiff: sim_Minstr/s regressed >15% vs committed $BASEFILE" >&2
        echo "benchdiff: if the slowdown is intended, refresh the baseline with scripts/benchdiff.sh" >&2
        exit 1
    fi
    exit 0
fi

# Carry the outgoing numbers into "previous" so the file itself records the
# before/after of the refresh.
prev="{}"
if [ -f "$BASEFILE" ]; then
    prev=$(awk '/"benchmarks":/ { inb = 1; depth = 0 }
        inb { print }
        inb && /{/ { depth += gsub(/{/, "{") }
        inb && /}/ { depth -= gsub(/}/, "}"); if (depth <= 0) exit }' "$BASEFILE" \
        | sed -e '1s/.*"benchmarks"[[:space:]]*:[[:space:]]*//' -e '$s/},\{0,1\}[[:space:]]*$/}/')
    [ -n "$prev" ] || prev="{}"
fi

{
    printf '{\n'
    printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "benchtime": "1x",\n'
    printf '  "count": %s,\n' "$COUNT"
    printf '  "benchmarks": {\n'
    first=1
    for b in $benches; do
        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '    "%s": {\n' "$b"
        printf '      "ns_per_op": %s,\n' "$(median "$b" "ns/op")"
        printf '      "allocs_per_op": %s,\n' "$(median "$b" "allocs/op")"
        printf '      "sim_minstr_per_s": %s\n' "$(median "$b" "sim_Minstr/s")"
        printf '    }'
    done
    printf '\n  },\n'
    printf '  "previous": %s\n' "$prev"
    printf '}\n'
} > "$BASEFILE"
echo "wrote $BASEFILE" >&2
