#!/usr/bin/env bash
# Kill-and-resume smoke test: SIGINT a sweep mid-grid, resume it, and
# assert the merged journal covers every experiment exactly once with a
# terminal status. Used by CI; runnable locally:
#
#   scripts/resume_smoke.sh [workdir]
#
# Environment:
#   KILL_AFTER   seconds before the SIGINT (default 20)
#   PARALLEL     worker pool size (default 2)
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
kill_after="${KILL_AFTER:-20}"
parallel="${PARALLEL:-2}"
journal="$work/journal.jsonl"
results="$work/results.json"

go build -o "$work/sweep" ./cmd/sweep
rm -f "$journal"

# Expected point ids: every experiment plus the injected chaos points.
ids="$("$work/sweep" -list | tail -n +2 | awk '{print $1}')"
ids="$ids inject-panic inject-livelock"

echo "== first run: interrupting after ${kill_after}s =="
"$work/sweep" -all -scale quick -parallel "$parallel" \
  -journal "$journal" -json "$results" -inject panic,livelock \
  >"$work/first.out" 2>"$work/first.err" &
pid=$!
sleep "$kill_after"
kill -INT "$pid" 2>/dev/null || true
first=0
wait "$pid" || first=$?
echo "first sweep exited $first"
tail -n 3 "$work/first.err" || true

# An interrupted sweep must not lose its results: exit 3 (partial) with a
# journal and partial JSON, or it finished before the signal (exit 3 too,
# because the injected panic point always fails).
if [[ "$first" != 3 ]]; then
  echo "FAIL: interrupted sweep exited $first, want 3 (partial success)" >&2
  exit 1
fi
test -s "$journal" || { echo "FAIL: no journal written" >&2; exit 1; }
test -s "$results" || { echo "FAIL: no partial -json results written" >&2; exit 1; }

echo "== resume =="
resumed=0
"$work/sweep" -all -scale quick -parallel "$parallel" \
  -journal "$journal" -json "$results" -inject panic,livelock -resume \
  >"$work/second.out" 2>"$work/second.err" || resumed=$?
echo "resumed sweep exited $resumed"
tail -n 3 "$work/second.err" || true

# The injected panic point fails by design, so the completed sweep is a
# partial success: exit 3.
if [[ "$resumed" != 3 ]]; then
  echo "FAIL: resumed sweep exited $resumed, want 3" >&2
  exit 1
fi

echo "== merged journal coverage =="
fail=0
for id in $ids; do
  n="$(grep -c "\"id\":\"$id\"" "$journal" || true)"
  if [[ "$n" != 1 ]]; then
    echo "FAIL: journal has $n records for $id, want exactly 1" >&2
    fail=1
  fi
done
# Every journaled record must be terminal (ok / recovered_after_fault /
# failed) after the resume — no lingering canceled points.
if grep -q '"status":"canceled"' "$journal"; then
  # A canceled record is fine only if the same spec hash was later re-run;
  # exactly-once coverage above already rules that out.
  echo "FAIL: canceled record left in merged journal" >&2
  fail=1
fi
if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "OK: merged journal covers every point exactly once"
