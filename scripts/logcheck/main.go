// Command logcheck validates structured JSON log streams (the stderr of
// dbsim, sweep, sweepd, sweepworker and sweeptrace) so CI catches schema
// regressions — a stray fmt.Println, a component that slipped back to
// ad-hoc prints — before a human greps a broken log. Checks, per file:
//
//   - every non-empty line is a single JSON object (no interleaved plain
//     text, no torn writes);
//   - every record carries the slog envelope: time (RFC3339-parseable),
//     level (DEBUG|INFO|WARN|ERROR), msg, plus the conventional component
//     and pid keys from internal/obs;
//   - with -require k1,k2,... each listed key appears in at least one
//     record across the inputs (e.g. -require spec_hash,worker to prove
//     correlation keys made it into a sweep's logs);
//   - with -component name every record's component matches.
//
// Exit status: 0 when all files pass, 1 with one line per violation on
// stderr when they do not, 2 on usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

var levels = map[string]bool{"DEBUG": true, "INFO": true, "WARN": true, "ERROR": true}

func main() {
	var (
		require   = flag.String("require", "", "comma-separated keys; each must appear in at least one record across all inputs")
		component = flag.String("component", "", "when set, every record's component must equal this")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "logcheck: usage: logcheck [-require k1,k2] [-component name] log1 [log2 ...]")
		os.Exit(2)
	}

	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	seenKeys := map[string]bool{}
	records := 0

	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		lineno := 0
		for sc.Scan() {
			lineno++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			where := fmt.Sprintf("%s:%d", path, lineno)
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				fail("%s: not a JSON object: %.80s", where, line)
				continue
			}
			records++
			for k := range rec {
				seenKeys[k] = true
			}
			ts, _ := rec["time"].(string)
			if ts == "" {
				fail("%s: missing time", where)
			} else if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
				fail("%s: unparseable time %q", where, ts)
			}
			if lv, _ := rec["level"].(string); !levels[lv] {
				fail("%s: missing or unknown level %q", where, rec["level"])
			}
			if _, ok := rec["msg"].(string); !ok {
				fail("%s: missing msg", where)
			}
			comp, _ := rec["component"].(string)
			if comp == "" {
				fail("%s: missing component", where)
			} else if *component != "" && comp != *component {
				fail("%s: component %q, want %q", where, comp, *component)
			}
			if _, ok := rec["pid"]; !ok {
				fail("%s: missing pid", where)
			}
		}
		if err := sc.Err(); err != nil {
			fail("%s: %v", path, err)
		}
		f.Close()
	}

	if records == 0 {
		fail("no log records in %d input file(s)", flag.NArg())
	}
	if *require != "" {
		for _, k := range strings.Split(*require, ",") {
			k = strings.TrimSpace(k)
			if k != "" && !seenKeys[k] {
				fail("required key %q appears in no record", k)
			}
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "logcheck: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("logcheck: %d files, %d records OK\n", flag.NArg(), records)
}
