package repro_test

import (
	"testing"

	"repro"
	"repro/internal/trace"
)

func TestPublicFacadeCustomStream(t *testing.T) {
	cfg := repro.DefaultConfig()
	cfg.Nodes = 1
	m, err := repro.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ins []repro.Instr
	pc := uint64(0x1000)
	for i := 0; i < 500; i++ {
		ins = append(ins,
			repro.Instr{Op: trace.OpLoad, PC: pc, Addr: 0x100000 + uint64(i)*8, Dest: 1},
			repro.Instr{Op: trace.OpIntALU, PC: pc + 4, Src1: 1, Dest: 2},
		)
		pc += 8
	}
	m.AddProcess(0, trace.NewSliceStream(ins))
	rep, err := m.Run(repro.RunOptions{Label: "custom", MaxCycles: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions != 1000 {
		t.Errorf("retired %d, want 1000", rep.Instructions)
	}
	if rep.ExecTime() == 0 || rep.IPC(1) <= 0 {
		t.Error("empty report")
	}
}

func TestPublicWorkloadConstructors(t *testing.T) {
	ocfg := repro.DefaultOLTPConfig(1)
	ocfg.Processes = 1
	ocfg.TransactionsPerProcess = 1
	o := repro.NewOLTP(ocfg)
	var in repro.Instr
	if s := o.Stream(0); !s.Next(&in) {
		t.Error("OLTP stream empty")
	}
	dcfg := repro.DefaultDSSConfig(1)
	dcfg.Processes = 1
	dcfg.RowsPerProcess = 100
	d := repro.NewDSS(dcfg)
	if s := d.Stream(0); !s.Next(&in) {
		t.Error("DSS stream empty")
	}
	if d.ExpectedRevenue(0) < 0 {
		t.Error("negative revenue")
	}
}

func TestScalesExported(t *testing.T) {
	if repro.QuickScale.OLTPTransactions <= 0 || repro.DefaultScale.OLTPTransactions < repro.QuickScale.OLTPTransactions {
		t.Error("scales misconfigured")
	}
}
