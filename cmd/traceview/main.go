// Command traceview renders the aggregate reports from a dbsim event
// trace (written with dbsim -trace-events): the per-PC and per-operation
// stall-attribution profile — reconciled against the simulator's own
// execution-time breakdown when the trace embeds it — the
// migratory-sharing attribution of dirty-miss time, and the per-class
// miss-latency histograms.
//
// Examples:
//
//	dbsim -workload oltp -trace-events run.trace.json
//	traceview run.trace.json
//	traceview -top 40 run.trace.json
//
// Exit status: 0 on success, 1 when the trace cannot be read or is
// empty, 2 on flag/usage errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/stats"
	"repro/internal/tracing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")

	top := flag.Int("top", 20, "rows to show in the per-site and per-line tables")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "traceview: usage: traceview [-top N] trace.json")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
	tf, err := tracing.ReadFile(f)
	f.Close()
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
	an := tf.Analysis
	totals := an.Totals()
	if totals.Total() == 0 && len(tf.Events) == 0 {
		log.Printf("%s: trace contains no events", flag.Arg(0))
		os.Exit(1)
	}

	source := "embedded aggregates"
	if !tf.FromAggregates {
		source = "rebuilt from raw events (no embedded aggregates; busy time unavailable)"
	}
	fmt.Printf("trace               %s\n", flag.Arg(0))
	if label, ok := tf.OtherData["label"].(string); ok {
		fmt.Printf("run                 %s\n", label)
	}
	fmt.Printf("window              cycles %d..%d\n", an.StartCycle, an.EndCycle)
	fmt.Printf("raw events          %d retained\n", len(tf.Events))
	fmt.Printf("analysis            %s\n\n", source)

	var ref *stats.Breakdown
	if b, ok := tracing.BreakdownFromMeta(tf.OtherData[tracing.BreakdownMetaKey]); ok {
		ref = &b
	}

	fmt.Printf("== stall attribution by instruction (top %d) ==\n", *top)
	fmt.Print(tracing.FormatStallProfile(an.StallProfile(tf.Resolve, *top), totals, ref))

	fmt.Printf("\n== stall attribution by engine operation ==\n")
	fmt.Print(tracing.FormatStallProfile(an.OperationProfile(tf.Resolve), totals, nil))

	fmt.Printf("\n== migratory sharing (dirty-miss attribution) ==\n")
	mig, non, rows := an.MigratorySummary(*top)
	fmt.Print(tracing.FormatMigratory(mig, non, rows))

	fmt.Printf("\n== miss latency by service class ==\n")
	fmt.Print(tracing.FormatLatency(&an.Lat))
}
