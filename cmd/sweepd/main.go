// Command sweepd is the fault-tolerant sweep server: it accepts point
// grids over an HTTP/JSON job API, hands points to remote sweepworker
// processes under expiring leases, records every transition in a durable
// append-only ledger, and serves repeated points from a content-addressed
// result cache keyed by the runner spec hash.
//
// Robustness properties:
//
//   - Restarting sweepd on the same -ledger replays the pending → leased →
//     done|failed state machine last-record-wins; in-flight jobs continue.
//   - A worker that stops heartbeating loses its lease after -lease-ttl and
//     the point is re-issued to another worker.
//   - Duplicate completions (expired-lease races, retried RPCs) are deduped
//     by spec hash: the first terminal record wins, so every point is
//     recorded exactly once no matter how chaotic the fleet.
//   - A torn trailing ledger record (crash mid-write) is skipped with a
//     warning on replay, never a refusal to start.
//
// Example:
//
//	sweepd -addr :8044 -ledger sweepd.ledger.jsonl
//	sweepworker -server http://host:8044 &
//	sweep -remote http://host:8044 -all -scale quick
//
// /metrics exposes service counters plus each worker's self-monitoring
// sample (heap, goroutines, rusage, points/sec) as one Prometheus page.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sweepsvc"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("sweepd: ")
	var (
		addr        = flag.String("addr", ":8044", "listen address")
		ledgerPath  = flag.String("ledger", "", "durable JSONL ledger (required; reopening replays it)")
		leaseTTL    = flag.Duration("lease-ttl", sweepsvc.DefaultLeaseTTL, "lease deadline horizon; a worker silent this long loses its point")
		cacheCap    = flag.Int("cache-cap", 0, "result cache capacity in records (0 = unbounded)")
		expireEvery = flag.Duration("expire-every", time.Second, "expired-lease scan interval")
	)
	flag.Parse()
	if *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "sweepd: -ledger is required (durability is the point)")
		flag.Usage()
		os.Exit(2)
	}

	m, err := sweepsvc.NewManager(sweepsvc.ManagerOptions{
		LedgerPath:    *ledgerPath,
		LeaseTTL:      *leaseTTL,
		CacheCapacity: *cacheCap,
		Warn:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	srv := sweepsvc.NewServer(m)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go srv.ExpireLoop(ctx, *expireEvery)
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
	}()

	log.Printf("serving on %s (ledger %s, lease TTL %v)", ln.Addr(), *ledgerPath, *leaseTTL)
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
