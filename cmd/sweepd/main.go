// Command sweepd is the fault-tolerant sweep server: it accepts point
// grids over an HTTP/JSON job API, hands points to remote sweepworker
// processes under expiring leases, records every transition in a durable
// append-only ledger, and serves repeated points from a content-addressed
// result cache keyed by the runner spec hash.
//
// Robustness properties:
//
//   - Restarting sweepd on the same -ledger replays the pending → leased →
//     done|failed state machine last-record-wins; in-flight jobs continue.
//   - A worker that stops heartbeating loses its lease after -lease-ttl and
//     the point is re-issued to another worker.
//   - Duplicate completions (expired-lease races, retried RPCs) are deduped
//     by spec hash: the first terminal record wins, so every point is
//     recorded exactly once no matter how chaotic the fleet.
//   - A torn trailing ledger record (crash mid-write) is skipped with a
//     warning on replay, never a refusal to start.
//
// Example:
//
//	sweepd -addr :8044 -ledger sweepd.ledger.jsonl
//	sweepworker -server http://host:8044 &
//	sweep -remote http://host:8044 -all -scale quick
//
// /metrics exposes service counters plus each worker's self-monitoring
// sample (heap, goroutines, rusage, points/sec) as one Prometheus page;
// /debug/pprof/ exposes live runtime profiles. Logs are structured JSON
// lines on stderr (level via DBSIM_LOG_LEVEL); -span-log records the
// server-side half of every job's span tree for cmd/sweeptrace.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sweepsvc"
)

func main() {
	logger := obs.Init("sweepd")
	var (
		addr        = flag.String("addr", ":8044", "listen address")
		ledgerPath  = flag.String("ledger", "", "durable JSONL ledger (required; reopening replays it)")
		leaseTTL    = flag.Duration("lease-ttl", sweepsvc.DefaultLeaseTTL, "lease deadline horizon; a worker silent this long loses its point")
		cacheCap    = flag.Int("cache-cap", 0, "result cache capacity in records (0 = unbounded)")
		expireEvery = flag.Duration("expire-every", time.Second, "expired-lease scan interval")
		spanLogPath = flag.String("span-log", "", "append-only JSONL span log (server half of each job's trace; stitch with sweeptrace)")
	)
	flag.Parse()
	if *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "sweepd: -ledger is required (durability is the point)")
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(err error) {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}

	var spans *obs.SpanLog
	if *spanLogPath != "" {
		var err error
		spans, err = obs.OpenSpanLog(*spanLogPath, "sweepd")
		if err != nil {
			fatal(err)
		}
		defer spans.Close()
	}

	m, err := sweepsvc.NewManager(sweepsvc.ManagerOptions{
		LedgerPath:    *ledgerPath,
		LeaseTTL:      *leaseTTL,
		CacheCapacity: *cacheCap,
		Warn:          obs.Printf(logger, slog.LevelWarn),
		Logger:        logger,
		Spans:         spans,
	})
	if err != nil {
		fatal(err)
	}
	defer m.Close()

	srv := sweepsvc.NewServer(m)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go srv.ExpireLoop(ctx, *expireEvery)
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
	}()

	logger.Info("serving", "addr", ln.Addr().String(), "ledger", *ledgerPath, "lease_ttl", leaseTTL.String())
	err = hs.Serve(ln)
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// Interrupted rather than crashed: the ledger makes this resumable, so
	// it is the partial-progress exit (3), with a final summary naming what
	// a restart on the same ledger will pick up.
	mt := m.MetricsSnapshot()
	logger.Warn("interrupted; ledger is resumable",
		"ledger", *ledgerPath, "jobs", mt.Jobs,
		"points_registered", mt.PointsRegistered,
		"reports_accepted", mt.ReportsAccepted,
		obs.KeyExitCode, 3)
	os.Exit(3)
}
