// Command sweeptrace stitches the per-process span logs of a distributed
// sweep (sweepd's -span-log, each sweepworker's -span-log, and optionally
// the sweep client's) into one timeline. It prints the assembled span
// trees as indented text and can export the whole thing as a Chrome
// trace-event file that Perfetto (or chrome://tracing) loads directly, so
// one picture shows submit → lease → run → heartbeats → report → merge
// across every process — including expiry → re-lease → takeover chains
// when a worker died mid-point.
//
// Examples:
//
//	sweeptrace sweepd.spans.jsonl w1.spans.jsonl w2.spans.jsonl
//	sweeptrace -o stitched.trace.json sweepd.spans.jsonl w*.spans.jsonl
//	sweeptrace -strict logs/*.spans.jsonl   # exit 1 on orphaned spans
//
// Exit status: 0 on success, 1 when reading or writing fails (or, with
// -strict, when any span's parent is missing from the stitched set), 2 on
// flag/usage errors.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

func main() {
	logger := obs.Init("sweeptrace")
	var (
		out    = flag.String("o", "", "also write the stitched timeline as Chrome trace-event JSON to this file (Perfetto-loadable)")
		strict = flag.Bool("strict", false, "exit nonzero when any span is orphaned (its parent span appears in no input log)")
		quiet  = flag.Bool("quiet", false, "suppress the text rendering; just stitch, validate and export")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "sweeptrace: at least one span-log file is required")
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(err error) {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}

	spans, err := obs.ReadSpanFiles(obs.Printf(logger, slog.LevelWarn), flag.Args()...)
	if err != nil {
		fatal(err)
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("no spans in %d input file(s)", flag.NArg()))
	}
	tree := obs.Stitch(spans)
	if !*quiet {
		tree.Format(os.Stdout)
	}
	logger.Info("stitched", "files", flag.NArg(), "spans", tree.Spans,
		"traces", len(tree.Traces), "roots", len(tree.Roots), "orphans", len(tree.Orphans))

	if *out != "" {
		f, err := telemetry.CreateFile(*out)
		if err != nil {
			fatal(err)
		}
		werr := tracing.WriteChromeSpans(f, tree.AllSpans())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		logger.Info("chrome trace written", "path", *out)
	}

	if *strict && len(tree.Orphans) > 0 {
		for _, o := range tree.Orphans {
			logger.Error("orphaned span", obs.KeyTrace, o.Trace, obs.KeySpan, o.ID,
				"name", o.Name, "missing_parent", o.Parent, "process", o.Process)
		}
		os.Exit(1)
	}
}
