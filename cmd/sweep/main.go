// Command sweep regenerates the paper's tables and figures. Each figure is
// a set of simulations whose rows are printed in the same series the paper
// plots (normalized execution-time breakdowns, read-stall magnifications,
// MSHR occupancy distributions, characterization tables).
//
// Examples:
//
//	sweep -list
//	sweep -fig fig2a
//	sweep -fig fig6 -scale quick
//	sweep -all | tee experiments_output.txt
//	sweep -all -json results.json
//	sweep -fig fig2a -telemetry-dir series/   # one JSONL series per run point
//
// Exit status: 0 on success, 1 when an experiment fails, 2 on flag/usage
// errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// jsonResult is the machine-readable form of one experiment, written by
// -json so BENCH_*.json-style trajectories can be scripted instead of
// scraped from the text tables.
type jsonResult struct {
	ID      string          `json:"id"`
	Title   string          `json:"title"`
	Reports []*stats.Report `json:"reports"`
	Seconds float64         `json:"seconds"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		fig          = flag.String("fig", "", "experiment id to run (see -list)")
		all          = flag.Bool("all", false, "run every experiment")
		list         = flag.Bool("list", false, "list experiment ids")
		scale        = flag.String("scale", "default", "workload scale: default or quick")
		timeout      = flag.Duration("timeout", 0, "wall-clock bound on the whole sweep (0 = none)")
		jsonPath     = flag.String("json", "", "also write results as JSON to this file (\"-\" = stdout)")
		telemetryDir = flag.String("telemetry-dir", "", "write one JSONL telemetry series per run point into this directory")
		telInterval  = flag.Uint64("telemetry-interval", 0, "telemetry sampling interval in cycles (0 = config default, 100k)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalUsage("unexpected arguments: %v", flag.Args())
	}

	if *list {
		fmt.Println("id         description")
		for _, e := range experiments.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Notes)
		}
		return
	}

	sc := experiments.DefaultScale
	switch *scale {
	case "default":
	case "quick":
		sc = experiments.QuickScale
	default:
		fatalUsage("unknown scale %q (default or quick)", *scale)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		sc.Context = ctx
	}
	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o777); err != nil {
			log.Fatal(err) // not a usage error: the path was valid, creating it failed
		}
	} else if *telInterval != 0 {
		fatalUsage("-telemetry-interval needs -telemetry-dir")
	}

	var results []jsonResult
	run := func(id string, f func(experiments.Scale) (*experiments.Result, error), notes string) {
		esc := sc
		if *telemetryDir != "" {
			esc.Telemetry = func(label string) *telemetry.Pipeline {
				path := filepath.Join(*telemetryDir, seriesFile(id, label))
				sink, err := telemetry.OpenJSONLSink(path)
				if err != nil {
					log.Printf("warning: %s: %v (series dropped)", id, err)
					return nil
				}
				pipe := telemetry.New(*telInterval)
				pipe.SetTag("fig", id)
				pipe.Attach(sink, nil)
				return pipe
			}
		}
		start := time.Now()
		res, err := f(esc)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		secs := time.Since(start).Seconds()
		fmt.Print(res.Render())
		fmt.Printf("   [%s, %.1fs]\n\n", notes, secs)
		results = append(results, jsonResult{ID: res.ID, Title: res.Title, Reports: res.Reports, Seconds: secs})
	}

	switch {
	case *all:
		fmt.Print(experiments.Fig1Params().Render())
		fmt.Println()
		for _, e := range experiments.All {
			run(e.ID, e.Run, e.Notes)
		}
	case *fig == "fig1":
		fmt.Print(experiments.Fig1Params().Render())
	case *fig != "":
		found := false
		for _, e := range experiments.All {
			if e.ID == *fig {
				run(e.ID, e.Run, e.Notes)
				found = true
				break
			}
		}
		if !found {
			fatalUsage("unknown experiment %q (try -list)", *fig)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			log.Fatal(err)
		}
	}
}

// fatalUsage reports a flag/usage error: message, usage text, exit 2.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// seriesFile names the per-run-point series file <fig>__<label>.jsonl,
// with the label mapped onto the portable filename alphabet.
func seriesFile(id, label string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, label)
	return fmt.Sprintf("%s__%s.jsonl", id, clean)
}

// writeJSON writes the collected results ("-" = stdout).
func writeJSON(path string, results []jsonResult) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
