// Command sweep regenerates the paper's tables and figures. Each figure is
// a set of simulations whose rows are printed in the same series the paper
// plots (normalized execution-time breakdowns, read-stall magnifications,
// MSHR occupancy distributions, characterization tables).
//
// Examples:
//
//	sweep -list
//	sweep -fig fig2a
//	sweep -fig fig6 -scale quick
//	sweep -all | tee experiments_output.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		fig     = flag.String("fig", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		scale   = flag.String("scale", "default", "workload scale: default or quick")
		timeout = flag.Duration("timeout", 0, "wall-clock bound on the whole sweep (0 = none)")
	)
	flag.Parse()

	if *list {
		fmt.Println("id         description")
		for _, e := range experiments.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Notes)
		}
		return
	}

	sc := experiments.DefaultScale
	if *scale == "quick" {
		sc = experiments.QuickScale
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		sc.Context = ctx
	}

	run := func(id string, f func(experiments.Scale) (*experiments.Result, error), notes string) {
		start := time.Now()
		res, err := f(sc)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Print(res.Render())
		fmt.Printf("   [%s, %.1fs]\n\n", notes, time.Since(start).Seconds())
	}

	switch {
	case *all:
		fmt.Print(experiments.Fig1Params().Render())
		fmt.Println()
		for _, e := range experiments.All {
			run(e.ID, e.Run, e.Notes)
		}
	case *fig == "fig1":
		fmt.Print(experiments.Fig1Params().Render())
	case *fig != "":
		for _, e := range experiments.All {
			if e.ID == *fig {
				run(e.ID, e.Run, e.Notes)
				return
			}
		}
		log.Fatalf("unknown experiment %q (try -list)", *fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
