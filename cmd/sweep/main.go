// Command sweep regenerates the paper's tables and figures. Each figure is
// a set of simulations whose rows are printed in the same series the paper
// plots (normalized execution-time breakdowns, read-stall magnifications,
// MSHR occupancy distributions, characterization tables).
//
// Points run through the supervised orchestration layer (internal/runner):
// a bounded worker pool with per-point deadlines, panic isolation,
// classified retries, and a durable JSONL journal. An interrupted sweep
// (Ctrl-C drains in-flight points; a second Ctrl-C aborts them) can be
// re-invoked with -resume to run only the points the journal does not
// already cover.
//
// Examples:
//
//	sweep -list
//	sweep -fig fig2a
//	sweep -fig fig6 -scale quick
//	sweep -all | tee experiments_output.txt
//	sweep -all -json results.json
//	sweep -all -parallel 4 -journal sweep.jsonl     # bounded worker pool
//	sweep -all -parallel 4 -journal sweep.jsonl -resume
//	sweep -fig fig2a,fig3a -telemetry-dir series/   # one JSONL series per run point
//	sweep -remote http://host:8044 -all             # submit to a sweepd fleet
//
// With -remote the grid is submitted to a sweepd server (cmd/sweepd) and
// executed by its sweepworker fleet: per-point status streams back, the
// merged results are fetched when the job completes, and points whose spec
// hash is already in the server's content-addressed result cache return
// instantly. -merged writes the canonical merged-results JSON, which is
// byte-identical between a serial local run and a distributed remote run
// of the same grid (the chaos harness's acceptance check).
//
// Exit status: 0 when every point succeeds, 1 when nothing succeeds, 2 on
// flag/usage errors, 3 on partial success (some points completed, some
// failed or were interrupted; partial results are still written).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"

	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/sweepsvc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// logger is the process-wide structured logger (stderr JSON; stdout stays
// reserved for rendered results). logf bridges printf-style progress lines
// into it at info level.
var (
	logger *slog.Logger
	logf   func(format string, args ...any)
)

func fatal(err error) {
	logger.Error("fatal", "error", err.Error())
	os.Exit(1)
}

// pointJSON is the machine-readable form of one run point, written by
// -json. Unlike the pre-orchestration format it carries per-point status,
// so partially-failed and interrupted sweeps still produce usable output.
type pointJSON struct {
	ID       string          `json:"id"`
	Title    string          `json:"title,omitempty"`
	Status   runner.Status   `json:"status"`
	Class    runner.Class    `json:"class,omitempty"`
	Error    string          `json:"error,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Resumed  bool            `json:"resumed,omitempty"`
	Seconds  float64         `json:"seconds"`
	Reports  []*stats.Report `json:"reports,omitempty"`
}

func main() {
	logger = obs.Init("sweep")
	logf = obs.Printf(logger, slog.LevelInfo)
	var (
		fig          = flag.String("fig", "", "experiment id(s) to run, comma-separated (see -list)")
		all          = flag.Bool("all", false, "run every experiment")
		list         = flag.Bool("list", false, "list experiment ids")
		scale        = flag.String("scale", "default", "workload scale: default or quick")
		timeout      = flag.Duration("timeout", 0, "wall-clock bound on the whole sweep (0 = none)")
		jsonPath     = flag.String("json", "", "also write results as JSON to this file (\"-\" = stdout)")
		telemetryDir = flag.String("telemetry-dir", "", "write one JSONL telemetry series per run point into this directory")
		telInterval  = flag.Uint64("telemetry-interval", 0, "telemetry sampling interval in cycles (0 = config default, 100k)")

		remote      = flag.String("remote", "", "submit the grid to this sweepd server instead of running locally (e.g. http://host:8044)")
		jobID       = flag.String("job", "", "job id for -remote submissions (default: server-assigned)")
		mergedPath  = flag.String("merged", "", "write canonical merged results JSON to this file (local and -remote runs of the same grid produce identical bytes)")
		spanLogPath = flag.String("span-log", "", "with -remote: append the client's job span to this JSONL span log (stitch with sweeptrace)")

		parallel     = flag.Int("parallel", 1, "worker pool size (points run concurrently; outcomes stay deterministic)")
		simThreads   = flag.Int("sim-threads", 1, "worker goroutines per simulation for quiet-span fan-out (bit-identical to 1; clamped when parallel x sim-threads exceeds GOMAXPROCS)")
		serial       = flag.Bool("serial", false, "run each figure's simulations serially (default: a per-figure pool of up to GOMAXPROCS workers)")
		journalPath  = flag.String("journal", "", "durable JSONL run journal, appended as each point completes")
		resume       = flag.Bool("resume", false, "skip points with a terminal record in -journal")
		ckDir        = flag.String("checkpoint-dir", "", "checkpoint running points under this directory; interrupted or retried points resume from their last capture instead of restarting")
		retries      = flag.Int("retries", 2, "sweep-wide retry budget for retryable failures")
		pointTimeout = flag.Duration("point-timeout", 0, "per-point wall-clock deadline (0 = derived from the scale's cycle budget)")
		inject       = flag.String("inject", "", "comma-separated synthetic failure points for chaos testing: panic, livelock")

		latchPolicy = flag.String("latch-policy", "", "overlay a latch policy on every experiment: plain, hints or htm (empty = each experiment's own)")

		faultSeed  = flag.Uint64("fault-seed", 1, "fault injector seed")
		faultMesh  = flag.Float64("fault-mesh", 0, "per-message mesh delay probability (0 disables)")
		faultNACK  = flag.Float64("fault-nack", 0, "per-request directory NACK probability (0 disables)")
		faultStall = flag.Float64("fault-stall", 0, "per-access transient memory stall probability (0 disables)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalUsage("unexpected arguments: %v", flag.Args())
	}

	if *list {
		fmt.Println("id         description")
		for _, e := range experiments.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Notes)
		}
		return
	}

	sc := experiments.DefaultScale
	switch *scale {
	case "default":
	case "quick":
		sc = experiments.QuickScale
	default:
		fatalUsage("unknown scale %q (default or quick)", *scale)
	}
	if *serial {
		sc.Parallel = 1
	}
	if *latchPolicy != "" {
		lp, ok := config.ParseLatchPolicy(*latchPolicy)
		if !ok {
			fatalUsage("unknown latch policy %q (plain, hints or htm)", *latchPolicy)
		}
		sc.LatchPolicy = lp
	}
	if *faultMesh > 0 || *faultNACK > 0 || *faultStall > 0 {
		sc.Faults = config.FaultConfig{
			Enabled:        true,
			Seed:           *faultSeed,
			MeshDelayProb:  *faultMesh,
			MeshDelayMax:   20,
			NACKProb:       *faultNACK,
			NACKMaxRetries: 4,
			NACKBackoff:    50,
			MemStallProb:   *faultStall,
			MemStallCycles: 100,
		}
		if err := sc.Faults.Validate(); err != nil {
			fatalUsage("%v", err)
		}
	}
	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o777); err != nil {
			// Not a usage error: the path was valid, creating it failed.
			fatal(fmt.Errorf("creating -telemetry-dir %s: %v", *telemetryDir, err))
		}
	} else if *telInterval != 0 {
		fatalUsage("-telemetry-interval needs -telemetry-dir")
	}
	if *resume && *journalPath == "" {
		fatalUsage("-resume needs -journal")
	}
	if *parallel < 1 {
		fatalUsage("-parallel must be >= 1")
	}
	if *simThreads < 1 {
		fatalUsage("-sim-threads must be >= 1")
	}
	sc.SimThreads = *simThreads
	sc.Logger = logger
	// Oversubscription guard at the sweep level: the worker pool runs
	// -parallel points at once and each would spawn -sim-threads span
	// workers. Beyond GOMAXPROCS that only adds scheduler churn, so clamp
	// the per-point threads here (figure-internal parallelism is guarded
	// again in experiments.runPoints). Results are bit-identical either way.
	if *simThreads > 1 {
		if gmp := runtime.GOMAXPROCS(0); *parallel**simThreads > gmp {
			clamped := gmp / *parallel
			if clamped < 1 {
				clamped = 1
			}
			logger.Warn("sim-threads oversubscribed; clamping per-point threads",
				"parallel", *parallel,
				"sim_threads", *simThreads,
				"gomaxprocs", gmp,
				"sim_threads_clamped", clamped)
			sc.SimThreads = clamped
		}
	}

	// Select the experiments to run. fig1 is a parameter table, not a
	// simulation, so it prints directly and never enters the pool.
	var selected []experiments.Experiment
	switch {
	case *all:
		fmt.Print(experiments.Fig1Params().Render())
		fmt.Println()
		selected = experiments.All
	case *fig != "":
		byID := make(map[string]experiments.Experiment, len(experiments.All))
		for _, e := range experiments.All {
			byID[e.ID] = e
		}
		seen := map[string]bool{}
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if id == "" || seen[id] {
				continue
			}
			seen[id] = true
			if id == "fig1" {
				fmt.Print(experiments.Fig1Params().Render())
				continue
			}
			e, ok := byID[id]
			if !ok {
				fatalUsage("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
		if len(selected) == 0 {
			return // only fig1 requested
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	// Remote mode: hand the grid to a sweepd fleet and wait for the
	// merged results; everything local below (telemetry, journal, pool)
	// is the workers' business, not ours.
	if *remote != "" {
		if *inject != "" || *telemetryDir != "" || *journalPath != "" || *resume {
			fatalUsage("-inject/-telemetry-dir/-journal/-resume are local-run knobs; not available with -remote")
		}
		os.Exit(runRemote(*remote, *jobID, selected, sc, *mergedPath, *timeout, *spanLogPath, *faultSeed))
	}
	if *spanLogPath != "" {
		fatalUsage("-span-log needs -remote (local sweeps have no cross-process trace)")
	}

	// Per-point telemetry: one JSONL series per run point, named with the
	// collision-proof id/label hash so shared labels cannot clobber each
	// other's series.
	var perPoint func(id string, esc experiments.Scale) experiments.Scale
	if *telemetryDir != "" {
		perPoint = func(id string, esc experiments.Scale) experiments.Scale {
			esc.Telemetry = func(label string) *telemetry.Pipeline {
				path := filepath.Join(*telemetryDir, telemetry.SeriesFileName(id, label))
				sink, err := telemetry.OpenJSONLSink(path)
				if err != nil {
					logger.Warn("telemetry series dropped", obs.KeyPoint, id, "error", err.Error())
					return nil
				}
				pipe := telemetry.New(*telInterval)
				pipe.SetTag("fig", id)
				pipe.Attach(sink, nil)
				return pipe
			}
			return esc
		}
	}

	points := experiments.Points(selected, sc, perPoint)
	if *telemetryDir != "" {
		for i := range points {
			points[i].Series = filepath.Join(*telemetryDir, points[i].ID+"__*.jsonl")
		}
	}
	injected, err := injectedPoints(*inject)
	if err != nil {
		fatalUsage("%v", err)
	}
	points = append(points, injected...)

	// Journal + resume.
	var journal *runner.Journal
	var completed map[string]*runner.Record
	if *journalPath != "" {
		if *resume {
			// Torn or corrupt journal lines (a crash mid-write) are skipped
			// with a warning; their points simply re-run.
			completed, err = runner.ReadJournalWarn(*journalPath, obs.Printf(logger.With("subsystem", "journal"), slog.LevelWarn))
			if err != nil {
				fatal(err)
			}
		}
		journal, err = runner.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
	}

	// Interrupt handling: first signal drains (in-flight points finish and
	// are journaled), second aborts in-flight points.
	hardCtx, hardCancel := context.WithCancel(context.Background())
	if *timeout > 0 {
		hardCtx, hardCancel = context.WithTimeout(context.Background(), *timeout)
	}
	defer hardCancel()
	drainCtx, drainCancel := context.WithCancel(context.Background())
	defer drainCancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		logger.Warn("interrupt: draining in-flight points; interrupt again to abort them")
		drainCancel()
		<-sigc
		logger.Warn("interrupt: aborting in-flight points")
		hardCancel()
	}()

	notes := make(map[string]string, len(selected))
	for _, e := range selected {
		notes[e.ID] = e.Notes
	}
	sum, err := runner.Run(hardCtx, points, runner.Options{
		Workers:       *parallel,
		PointTimeout:  *pointTimeout,
		RetryBudget:   *retries,
		CheckpointDir: *ckDir,
		Journal:       journal,
		Completed:     completed,
		Drain:         drainCtx,
		OnEvent:       eventLogger(notes),
		Logger:        logger,
		Provenance:    sweepProvenance(*faultSeed),
	})
	if err != nil {
		fatal(err)
	}
	if journal != nil {
		if cerr := journal.Close(); cerr != nil {
			logger.Warn("journal close failed", "error", cerr.Error())
		}
	}
	if sum.JournalErrs > 0 {
		logger.Warn("journal writes failed; -resume may re-run those points", "failed_writes", sum.JournalErrs)
	}

	if *jsonPath != "" && len(sum.Records) > 0 {
		if werr := writeJSON(*jsonPath, sum); werr != nil {
			logger.Error("writing -json output failed", "error", werr.Error())
			if sum.Complete() {
				os.Exit(1)
			}
		}
	}
	if *mergedPath != "" {
		if werr := writeMergedLocal(*mergedPath, sum); werr != nil {
			logger.Error("writing -merged output failed", "error", werr.Error())
			if sum.Complete() {
				os.Exit(1)
			}
		}
	}

	// Final summary: one structured line carrying the whole outcome and the
	// exit code (3 = partial/interrupted; see README "Exit codes").
	code := sum.ExitCode()
	lvl := slog.LevelInfo
	if code != 0 {
		lvl = slog.LevelWarn
	}
	logger.Log(context.Background(), lvl, "sweep finished",
		"ok", sum.OK, "recovered", sum.Recovered, "failed", sum.Failed,
		"canceled", sum.Canceled, "skipped", sum.Skipped,
		"reused", sum.Reused, "retries", sum.RetriesUsed,
		obs.KeyExitCode, code)
	os.Exit(code)
}

// sweepProvenance is the provenance record stamped on every journaled
// point of a local sweep (the remote path's records are stamped by the
// worker that actually ran them).
func sweepProvenance(seed uint64) *obs.Provenance {
	p := obs.Collect("sweep", os.Args[1:])
	p.Seed = seed
	return p
}

// eventLogger renders pool progress: completed results stream to stdout in
// completion order; failures, retries and skips go to the log.
func eventLogger(notes map[string]string) func(runner.Event) {
	return func(ev runner.Event) {
		switch ev.Kind {
		case runner.EventRetry:
			logf("%s: attempt %d failed (%v); retrying in %v", ev.Point, ev.Attempt, ev.Err, ev.Delay)
		case runner.EventSkip:
			if ev.Record != nil && ev.Record.Reused {
				logf("%s: complete in journal (%s), skipping", ev.Point, ev.Record.Status)
			} else {
				logf("%s: skipped (sweep draining)", ev.Point)
			}
		case runner.EventDone:
			if res, ok := ev.Result.(*experiments.Result); ok && res != nil {
				fmt.Print(res.Render())
				fmt.Printf("   [%s, %.1fs]\n\n", notes[ev.Point], ev.Record.Seconds)
			}
			switch ev.Record.Status {
			case runner.StatusRecovered:
				logf("%s: recovered after disabling the fault profile (%d attempts; original failure: %s)",
					ev.Point, ev.Record.Attempts, ev.Record.Error)
			case runner.StatusFailed, runner.StatusCanceled:
				logf("%s: %s (%s): %s", ev.Point, ev.Record.Status, ev.Record.Class, ev.Record.Error)
				if ev.Record.Diag != nil {
					fmt.Fprint(os.Stderr, ev.Record.Diag.String())
				}
			}
		}
	}
}

// injectedPoints builds the synthetic chaos points requested by -inject:
// "panic" crashes inside the point (exercising panic isolation), and
// "livelock" fails with a fault-injected watchdog trip until the pool
// retries it with faults disabled (exercising classified retry and
// recovered_after_fault journaling).
func injectedPoints(kinds string) ([]runner.Point, error) {
	if kinds == "" {
		return nil, nil
	}
	var pts []runner.Point
	for _, k := range strings.Split(kinds, ",") {
		switch strings.TrimSpace(k) {
		case "panic":
			pts = append(pts, runner.Point{
				ID:   "inject-panic",
				Spec: "inject-panic",
				Run: func(context.Context, runner.Attempt) (any, error) {
					// Crash inside a real machine so the failure carries a
					// machine snapshot, exactly like a model invariant blowing
					// up mid-run.
					cfg := config.Default()
					cfg.Nodes = 1
					sys, err := core.NewSystem(cfg)
					if err != nil {
						return nil, err
					}
					sys.AddProcess(0, panicStream{})
					_, err = sys.Run(core.RunOptions{Label: "inject-panic", MaxCycles: 1_000_000})
					return nil, err
				},
			})
		case "livelock":
			pts = append(pts, runner.Point{
				ID:     "inject-livelock",
				Spec:   "inject-livelock",
				Faulty: true,
				Run: func(_ context.Context, att runner.Attempt) (any, error) {
					if att.DisableFaults {
						return &experiments.Result{
							ID:    "inject-livelock",
							Title: "synthetic fault-injected livelock (clean retry succeeded)",
						}, nil
					}
					return nil, livelockError()
				},
			})
		default:
			return nil, fmt.Errorf("unknown -inject kind %q (panic or livelock)", k)
		}
	}
	return pts, nil
}

// panicStream panics on its first instruction, standing in for an internal
// invariant violation inside the machine model.
type panicStream struct{}

func (panicStream) Next(*trace.Instr) bool { panic("injected panic point") }

// livelockError fabricates the failure a fault-induced livelock produces:
// a watchdog ProgressError carrying a real machine snapshot.
func livelockError() error {
	pe := &core.ProgressError{Cycle: 2_000_000, LastProgress: 0, Window: 2_000_000}
	cfg := config.Default()
	cfg.Nodes = 1
	if sys, err := core.NewSystem(cfg); err == nil {
		pe.Snapshot = sys.Snapshot("watchdog")
	}
	return pe
}

// runRemote submits the selected experiments to a sweepd server, streams
// per-point progress, renders completed results, and optionally writes the
// canonical merged-results file. Returns the process exit code using the
// same convention as local runs (0 complete, 3 partial, 1 nothing).
//
// The submission roots the job's distributed trace: a "job" span is minted
// here (recorded to spanLogPath when set) and its context rides the
// SubmitRequest, so sweepd's submit/lease/merge spans — and through the
// lease responses every worker's run spans — all share one trace ID.
func runRemote(base, jobID string, selected []experiments.Experiment, sc experiments.Scale, mergedPath string, timeout time.Duration, spanLogPath string, seed uint64) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var spans *obs.SpanLog
	if spanLogPath != "" {
		var err error
		spans, err = obs.OpenSpanLog(spanLogPath, "sweep")
		if err != nil {
			logger.Error("span log", "error", err.Error())
			return 1
		}
		defer spans.Close()
	}

	req := &sweepsvc.SubmitRequest{JobID: jobID, Provenance: sweepProvenance(seed)}
	for _, e := range selected {
		spec, err := sc.SpecJSON(e.ID)
		if err != nil {
			logger.Error("spec", "error", err.Error())
			return 1
		}
		req.Points = append(req.Points, sweepsvc.JobPoint{
			ID:        e.ID,
			Spec:      spec,
			MaxCycles: sc.MaxCycles,
			Faulty:    sc.Faults.Enabled,
		})
	}
	// Root span for the whole job. Emit even with no span log (nil-safe):
	// the minted context still propagates, so the server-side tree hangs
	// together and only the client-side root record is absent.
	jobStart := time.Now()
	jobSC := spans.Emit(obs.SpanContext{}, "job", jobStart, jobStart, nil)
	req.Trace = &jobSC
	req.Provenance.Trace = jobSC.Trace

	cl := &sweepsvc.Client{
		Base: base,
		OnRetry: func(op string, err error, delay time.Duration) {
			logf("%s failed (%v); retrying in %v", op, err, delay)
		},
	}
	st, err := cl.Submit(ctx, req)
	if err != nil {
		logger.Error("submit failed", "error", err.Error())
		return 1
	}
	logger.Info("job submitted", obs.KeyJob, st.JobID, "points", st.Total,
		"done", st.Done, "cached", st.Cached, obs.KeyTrace, jobSC.Trace)

	st, err = cl.WaitJob(ctx, st.JobID, func(ev sweepsvc.Event) {
		switch ev.Status {
		case sweepsvc.PointLeased:
			logf("%s: leased to %s", ev.ID, ev.Worker)
		case sweepsvc.PointDone:
			if ev.Cached {
				logf("%s: done (result cache)", ev.ID)
			} else {
				logf("%s: done on %s", ev.ID, ev.Worker)
			}
		case sweepsvc.PointFailed:
			logf("%s: failed on %s: %s", ev.ID, ev.Worker, ev.Error)
		case sweepsvc.PointPending:
			if ev.Worker == "" && ev.Seq > 0 {
				logf("%s: lease expired; re-queued", ev.ID)
			}
		}
	})
	if err != nil {
		logger.Error("wait failed", "error", err.Error())
		return 1
	}

	res, err := cl.Results(ctx, st.JobID)
	if err != nil {
		logger.Error("results fetch failed", "error", err.Error())
		return 1
	}
	for _, p := range res.Points {
		if len(p.Result) == 0 {
			continue
		}
		var r experiments.Result
		if json.Unmarshal(p.Result, &r) == nil && r.ID != "" {
			fmt.Print(r.Render())
			fmt.Println()
		}
	}
	if mergedPath != "" {
		if werr := writeMergedFile(mergedPath, res.Points); werr != nil {
			logger.Error("writing -merged output failed", "error", werr.Error())
			return 1
		}
	}

	code := 0
	switch {
	case st.Failed == 0 && st.Done == st.Total:
	case st.Done > 0:
		code = 3
	default:
		code = 1
	}
	// Re-record the job root with its true duration now the job is over
	// (the stitcher keeps the later record; see obs.Stitch).
	if jobSC.Valid() {
		spans.Record(obs.Span{
			Trace: jobSC.Trace, ID: jobSC.Span, Name: "job",
			Start: jobStart.UnixNano(), End: time.Now().UnixNano(),
			Attrs: map[string]string{obs.KeyJob: st.JobID, "exit": fmt.Sprint(code)},
		})
	}
	lvl := slog.LevelInfo
	if code != 0 {
		lvl = slog.LevelWarn
	}
	logger.Log(context.Background(), lvl, "job finished", obs.KeyJob, st.JobID,
		"done", st.Done, "cached", st.Cached, "failed", st.Failed,
		"total", st.Total, obs.KeyExitCode, code)
	return code
}

// writeMergedLocal writes a local summary in the canonical merged-results
// byte form shared with -remote (sweepsvc.WriteMerged), so the chaos
// harness can diff a serial local sweep against a distributed one.
func writeMergedLocal(path string, sum *runner.Summary) error {
	return writeMergedFile(path, sweepsvc.MergedFromRecords(sum.Records))
}

func writeMergedFile(path string, pts []sweepsvc.MergedPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sweepsvc.WriteMerged(f, pts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fatalUsage reports a flag/usage error: message, usage text, exit 2.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// writeJSON writes one pointJSON per record ("-" = stdout), including
// records replayed from the journal on -resume, so the output always
// reflects everything known about the sweep — even when it only partially
// succeeded.
func writeJSON(path string, sum *runner.Summary) error {
	results := make([]pointJSON, 0, len(sum.Records))
	for _, rec := range sum.Records {
		pj := pointJSON{
			ID:       rec.ID,
			Status:   rec.Status,
			Class:    rec.Class,
			Error:    rec.Error,
			Attempts: rec.Attempts,
			Resumed:  rec.Reused,
			Seconds:  rec.Seconds,
		}
		if len(rec.Result) > 0 {
			var res experiments.Result
			if err := json.Unmarshal(rec.Result, &res); err == nil {
				pj.Title = res.Title
				pj.Reports = res.Reports
			}
		}
		results = append(results, pj)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
