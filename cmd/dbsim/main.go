// Command dbsim runs one simulation of a database workload on the modelled
// CC-NUMA multiprocessor and prints the execution-time breakdown and
// memory-system characterization.
//
// Examples:
//
//	dbsim -workload oltp
//	dbsim -workload dss -nodes 1 -issue 8
//	dbsim -workload oltp -consistency SC -impl spec
//	dbsim -workload oltp -streambuf 4 -hints flush+prefetch
//	dbsim -workload oltp -telemetry-jsonl series.jsonl -telemetry-interval 50000
//	dbsim -workload dss -telemetry-http :9090   # live Prometheus endpoint
//	dbsim -workload oltp -trace-events run.trace.json -trace-profile profile.json
//	dbsim -workload oltp -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Exit status: 0 on success, 1 when the simulation fails (the diagnostic
// machine snapshot, if any, is printed to stderr), 2 on flag/usage errors,
// 3 when the run is interrupted (Ctrl-C or an expired -timeout cancels the
// run cleanly: the machine snapshot at the interrupt is printed to stderr
// instead of the process dying mid-cycle, and the final structured log
// record carries exit_code).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/workload/oltp"
)

// logger is the process-wide structured logger (stderr JSON; stdout stays
// reserved for the rendered report).
var logger *slog.Logger

func warnf(format string, args ...any) {
	logger.Warn(fmt.Sprintf(format, args...))
}

func main() {
	logger = obs.Init("dbsim")

	var (
		workload    = flag.String("workload", "oltp", "workload: oltp or dss")
		nodes       = flag.Int("nodes", 4, "number of processors/nodes")
		issue       = flag.Int("issue", 4, "issue width")
		window      = flag.Int("window", 64, "instruction window size")
		inorder     = flag.Bool("inorder", false, "in-order issue")
		mshrs       = flag.Int("mshrs", 8, "outstanding misses (L1D and L2 MSHRs)")
		consistency = flag.String("consistency", "RC", "memory model: SC, PC or RC")
		impl        = flag.String("impl", "plain", "consistency implementation: plain, prefetch or spec")
		streambuf   = flag.Int("streambuf", 0, "instruction stream buffer entries (0 = none)")
		hints       = flag.String("hints", "none", "software hints: none, flush or flush+prefetch")
		latchPol    = flag.String("latch-policy", "plain", "lock-path strategy: plain, hints (latch prefetch+flush) or htm (latch elision)")
		htmReadSet  = flag.Int("htm-read-set", 0, "HTM transactional read-set bound in lines (0 = derive from L1D geometry)")
		htmWriteSet = flag.Int("htm-write-set", 0, "HTM transactional write-set bound in lines (0 = derive from L1D geometry)")
		htmRetries  = flag.Int("htm-retries", config.Default().HTM.MaxRetries, "HTM speculative retries before latch fallback")
		htmBackoff  = flag.Int("htm-backoff", config.Default().HTM.BackoffCycles, "HTM linear backoff unit between retries, in cycles")
		tx          = flag.Int("tx", 3, "OLTP transactions per process")
		rows        = flag.Int("rows", 24000, "DSS rows per process")
		warmupTx    = flag.Int("warmup", 1, "OLTP warm-up transactions per process")
		perfectI    = flag.Bool("perfect-icache", false, "perfect instruction cache")
		perfectB    = flag.Bool("perfect-bpred", false, "perfect branch prediction")
		maxCycles   = flag.Uint64("max-cycles", 2_000_000_000, "simulation cycle bound")
		tracePrefix = flag.String("trace", "", "replay trace files <prefix>.pN.trace instead of generating a workload")
		traceProcs  = flag.Int("trace-procs", 1, "number of trace files to replay")

		timeout     = flag.Duration("timeout", 0, "wall-clock bound on the run (0 = none)")
		watchdog    = flag.Uint64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default, negative progress impossible)")
		noWatchdog  = flag.Bool("no-watchdog", false, "disable the forward-progress watchdog")
		debugChecks = flag.Bool("debug-checks", false, "enable coherence invariant and consistency order checking (slow)")
		faultSeed   = flag.Uint64("fault-seed", 1, "fault injector seed")
		faultMesh   = flag.Float64("fault-mesh", 0, "per-message mesh delay probability (0 disables)")
		faultNACK   = flag.Float64("fault-nack", 0, "per-request directory NACK probability (0 disables)")
		faultStall  = flag.Float64("fault-stall", 0, "per-access transient memory stall probability (0 disables)")

		ckFile     = flag.String("checkpoint", "", "write periodic mid-run checkpoints to this file (atomically replaced each capture)")
		ckInterval = flag.Uint64("checkpoint-interval", 0, "checkpoint capture period in simulated cycles (0 = default, 1M)")
		ckRestore  = flag.String("restore", "", "resume from this checkpoint file; an invalid or mismatched file falls back to a fresh run")

		telJSONL    = flag.String("telemetry-jsonl", "", "write interval telemetry samples to this JSONL file")
		telCSV      = flag.String("telemetry-csv", "", "write interval telemetry samples to this CSV file")
		telHTTP     = flag.String("telemetry-http", "", "serve live Prometheus metrics on this address (e.g. :9090)")
		telInterval = flag.Uint64("telemetry-interval", 0, "telemetry sampling interval in cycles (0 = config default, 100k)")

		simThreads = flag.Int("sim-threads", 1, "worker goroutines for quiet-span fan-out inside the simulation (1 = serial engine; any value is bit-identical)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")

		reportJSON = flag.String("report-json", "", "write the machine-readable report (with run provenance) to this JSON file (\"-\" = stdout)")

		traceEvents  = flag.String("trace-events", "", "write the cycle-resolved event trace to this Chrome trace-event JSON file (Perfetto-loadable)")
		traceProfile = flag.String("trace-profile", "", "write the stall/migratory/latency aggregate tables to this file (.csv, else JSON)")
		traceBuf     = flag.Int("trace-buf", tracing.DefaultBufferCap, "event ring capacity; oldest raw events are overwritten beyond it")
		traceSample  = flag.Uint64("trace-sample", 1, "keep every Nth raw event of each kind (aggregates stay exact)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalUsage("unexpected arguments: %v", flag.Args())
	}

	cfg := config.Default()
	cfg.Nodes = *nodes
	cfg.IssueWidth = *issue
	cfg.WindowSize = *window
	cfg.InOrder = *inorder
	cfg.L1D.MSHRs = *mshrs
	cfg.L2.MSHRs = *mshrs
	cfg.StreamBufEntries = *streambuf
	cfg.PerfectICache = *perfectI
	cfg.PerfectBPred = *perfectB
	switch *consistency {
	case "SC":
		cfg.Consistency = config.SC
	case "PC":
		cfg.Consistency = config.PC
	case "RC":
		cfg.Consistency = config.RC
	default:
		fatalUsage("unknown consistency model %q", *consistency)
	}
	switch *impl {
	case "plain":
		cfg.ConsistencyOpts = config.ImplPlain
	case "prefetch":
		cfg.ConsistencyOpts = config.ImplPrefetch
	case "spec":
		cfg.ConsistencyOpts = config.ImplSpeculative
	default:
		fatalUsage("unknown consistency implementation %q", *impl)
	}
	lp, ok := config.ParseLatchPolicy(*latchPol)
	if !ok {
		fatalUsage("unknown latch policy %q (plain, hints or htm)", *latchPol)
	}
	cfg.LatchPolicy = lp
	cfg.HTM.ReadSetLines = *htmReadSet
	cfg.HTM.WriteSetLines = *htmWriteSet
	cfg.HTM.MaxRetries = *htmRetries
	cfg.HTM.BackoffCycles = *htmBackoff
	cfg.DebugChecks = *debugChecks
	if *faultMesh > 0 || *faultNACK > 0 || *faultStall > 0 {
		cfg.Faults = config.FaultConfig{
			Enabled:        true,
			Seed:           *faultSeed,
			MeshDelayProb:  *faultMesh,
			MeshDelayMax:   20,
			NACKProb:       *faultNACK,
			NACKMaxRetries: 4,
			NACKBackoff:    50,
			MemStallProb:   *faultStall,
			MemStallCycles: 100,
		}
	}
	if err := cfg.Validate(); err != nil {
		fatalUsage("%v", err)
	}

	var hl oltp.HintLevel
	switch *hints {
	case "none":
		hl = oltp.HintNone
	case "flush":
		hl = oltp.HintFlush
	case "flush+prefetch":
		hl = oltp.HintFlushPrefetch
	default:
		fatalUsage("unknown hint level %q", *hints)
	}

	pipe, err := buildPipeline(*telJSONL, *telCSV, *telHTTP, *telInterval)
	if err != nil {
		fatalUsage("%v", err)
	}

	// Ctrl-C cancels the run through the context instead of killing the
	// process: core.Run notices within a few thousand simulated cycles and
	// returns a *core.CanceledError carrying a machine snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *simThreads < 1 {
		fatalUsage("-sim-threads must be >= 1")
	}
	sc := experiments.Scale{
		OLTPTransactions: *tx,
		OLTPWarmupTx:     *warmupTx,
		DSSRows:          *rows,
		MaxCycles:        *maxCycles,
		Context:          ctx,
		WatchdogWindow:   *watchdog,
		DisableWatchdog:  *noWatchdog,
		SimThreads:       *simThreads,
	}
	if pipe != nil {
		sc.Telemetry = func(string) *telemetry.Pipeline { return pipe }
	}
	var trc *tracing.Tracer
	if *traceEvents != "" || *traceProfile != "" {
		trc = tracing.New(tracing.Options{BufferCap: *traceBuf, SampleEvery: *traceSample})
		sc.Tracer = trc
	} else if *traceBuf != tracing.DefaultBufferCap || *traceSample != 1 {
		fatalUsage("-trace-buf/-trace-sample need -trace-events or -trace-profile")
	}

	// -restore without -checkpoint keeps checkpointing onto the restored
	// file, so a run can be preempted and resumed any number of times.
	if *ckRestore != "" && *ckFile == "" {
		*ckFile = *ckRestore
	}
	if *ckInterval != 0 && *ckFile == "" {
		fatalUsage("-checkpoint-interval needs -checkpoint or -restore")
	}
	// The spec hash binds a checkpoint to the exact machine and workload it
	// was taken from (restoring under any other flag set is rejected and
	// falls back to a fresh run) and content-addresses this run in the
	// provenance record written by -report-json.
	spec := runner.SpecHash(struct {
		Config   config.Config `json:"config"`
		Workload string        `json:"workload"`
		Tx       int           `json:"tx"`
		WarmupTx int           `json:"warmup_tx"`
		Rows     int           `json:"rows"`
		Hints    string        `json:"hints"`
		Max      uint64        `json:"max_cycles"`
	}{cfg, *workload, *tx, *warmupTx, *rows, *hints, *maxCycles})
	prov := obs.Collect("dbsim", os.Args[1:])
	prov.Seed = *faultSeed
	prov.SpecHash = spec

	var lastCheckpoint uint64
	if *ckFile != "" {
		if *tracePrefix != "" {
			fatalUsage("-checkpoint is not supported with trace replay")
		}
		sc.Checkpoint = func(string) *core.CheckpointOptions {
			return &core.CheckpointOptions{
				Path:      *ckFile,
				Interval:  *ckInterval,
				SpecHash:  spec,
				OnCapture: func(cycle uint64, _ string) { lastCheckpoint = cycle },
			}
		}
		sc.Restore = *ckRestore
		sc.RestoreFallback = func(label string, err error) {
			warnf("checkpoint %s unusable, starting from scratch: %v", *ckRestore, err)
		}
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}

	var rep *stats.Report
	switch {
	case *tracePrefix != "":
		rep, err = replayTraces(cfg, *tracePrefix, *traceProcs, sc, pipe)
	case *workload == "oltp":
		rep, err = experiments.RunOLTP(cfg, sc, "oltp", hl)
	case *workload == "dss":
		rep, err = experiments.RunDSS(cfg, sc, "dss")
	default:
		fatalUsage("unknown workload %q", *workload)
	}
	if err != nil {
		if snap := snapshotOf(err); snap != nil {
			fmt.Fprint(os.Stderr, snap.String())
		}
		// A failed run's partial trace is often the most useful diagnostic;
		// export whatever was recorded before exiting.
		writeTraceOutputs(trc, *traceEvents, *traceProfile, rep)
		stopProfiles()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if lastCheckpoint > 0 {
				logger.Info("checkpoint saved; resumable",
					obs.KeyCycle, lastCheckpoint, "restore", *ckFile)
			}
			// Interrupted, not failed: the run was draining fine.
			logger.Warn("run interrupted", "workload", *workload,
				obs.KeySpecHash, spec, "error", err.Error(), obs.KeyExitCode, 3)
			os.Exit(3)
		}
		logger.Error("run failed", "workload", *workload,
			obs.KeySpecHash, spec, "error", err.Error(), obs.KeyExitCode, 1)
		os.Exit(1)
	}
	if pipe != nil {
		if terr := pipe.Err(); terr != nil {
			warnf("%v", terr)
		}
	}
	writeTraceOutputs(trc, *traceEvents, *traceProfile, rep)
	stopProfiles()
	printReport(os.Stdout, cfg, rep)
	if trc != nil && rep.HTMBegins > 0 {
		a := trc.Analysis()
		fmt.Println()
		fmt.Print(tracing.FormatHTM(a.HTM, a.Totals()))
	}
	if *reportJSON != "" {
		if werr := writeReportJSON(*reportJSON, prov, rep); werr != nil {
			logger.Error("writing -report-json failed", "error", werr.Error(), obs.KeyExitCode, 1)
			os.Exit(1)
		}
	}
	logger.Info("run complete", "workload", *workload, obs.KeySpecHash, spec,
		"instructions", rep.Instructions, "cycles", rep.Cycles, obs.KeyExitCode, 0)
}

// writeReportJSON writes the machine-readable run outcome: the provenance
// record (who/what/where produced it) alongside the full report.
func writeReportJSON(path string, prov *obs.Provenance, rep *stats.Report) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Provenance *obs.Provenance `json:"provenance"`
		Report     *stats.Report   `json:"report"`
	}{prov, rep})
}

// startProfiles starts the pprof CPU profile and arranges the heap profile,
// returning a stop function that finishes both. The stop function is called
// on every exit path (including failed runs, whose profiles are usually the
// interesting ones) rather than deferred, because the error paths leave via
// os.Exit.
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				warnf("%v", err)
			}
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			warnf("%v", err)
			return
		}
		runtime.GC() // materialize the live set before the snapshot
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			warnf("writing %s: %v", memPath, werr)
		}
	}, nil
}

// writeTraceOutputs exports the recorded event trace and aggregate
// profile, embedding the simulator's own breakdown for reconciliation.
func writeTraceOutputs(trc *tracing.Tracer, eventsPath, profilePath string, rep *stats.Report) {
	if trc == nil {
		return
	}
	if rep != nil {
		trc.SetMeta(tracing.BreakdownMetaKey, tracing.BreakdownToMeta(rep.Breakdown))
		trc.SetMeta("label", rep.Label)
	}
	if eventsPath != "" {
		if f, err := telemetry.CreateFile(eventsPath); err != nil {
			warnf("%v", err)
		} else {
			werr := trc.WriteChrome(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				warnf("writing %s: %v", eventsPath, werr)
			} else {
				kept, sampled, overwritten := trc.Stats()
				logger.Info("trace events written", "path", eventsPath,
					"events", kept, "sampled_out", sampled, "overwritten", overwritten)
			}
		}
	}
	if profilePath != "" {
		tables := trc.Analysis().Tables(trc.Resolve, 50)
		var err error
		if strings.HasSuffix(profilePath, ".csv") {
			err = telemetry.WriteTablesCSV(profilePath, tables)
		} else {
			err = telemetry.WriteTablesJSON(profilePath, tables)
		}
		if err != nil {
			warnf("%v", err)
		} else {
			logger.Info("trace aggregate profile written", "path", profilePath)
		}
	}
}

// fatalUsage reports a flag/usage error: message, usage text, exit 2.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dbsim: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// buildPipeline assembles the telemetry pipeline from the CLI flags,
// returning nil when no sink was requested.
func buildPipeline(jsonlPath, csvPath, httpAddr string, interval uint64) (*telemetry.Pipeline, error) {
	if jsonlPath == "" && csvPath == "" && httpAddr == "" {
		if interval != 0 {
			return nil, errors.New("-telemetry-interval needs at least one telemetry sink flag")
		}
		return nil, nil
	}
	pipe := telemetry.New(interval)
	if jsonlPath != "" {
		sink, err := telemetry.OpenJSONLSink(jsonlPath)
		if err != nil {
			return nil, err
		}
		pipe.Attach(sink, nil)
	}
	if csvPath != "" {
		sink, err := telemetry.OpenCSVSink(csvPath)
		if err != nil {
			return nil, err
		}
		pipe.Attach(sink, nil)
	}
	if httpAddr != "" {
		sink, err := telemetry.ListenPromSink(httpAddr)
		if err != nil {
			return nil, err
		}
		logger.Info("serving telemetry", "url", "http://"+sink.Addr()+"/metrics")
		pipe.Attach(sink, nil)
	}
	return pipe, nil
}

// snapshotOf extracts the machine-state snapshot attached to a watchdog,
// cycle-limit, or recovered-panic error, if any.
func snapshotOf(err error) *diag.Snapshot {
	var pe *core.ProgressError
	if errors.As(err, &pe) {
		return pe.Snapshot
	}
	var ce *core.CycleLimitError
	if errors.As(err, &ce) {
		return ce.Snapshot
	}
	var fe *diag.PanicError
	if errors.As(err, &fe) {
		return fe.Snapshot
	}
	var cce *core.CanceledError
	if errors.As(err, &cce) {
		return cce.Snapshot
	}
	return nil
}

// replayTraces drives the machine from trace files written by cmd/tracegen
// (one per server process, round-robin across the nodes).
func replayTraces(cfg config.Config, prefix string, procs int, sc experiments.Scale, pipe *telemetry.Pipeline) (*stats.Report, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for p := 0; p < procs; p++ {
		path := fmt.Sprintf("%s.p%d.trace", prefix, p)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		sys.AddProcess(p%cfg.Nodes, r)
	}
	if pipe != nil {
		pipe.SetTag("workload", "trace-replay")
		defer func() { _ = pipe.Close() }()
	}
	return sys.Run(core.RunOptions{
		Label:           "trace-replay",
		MaxCycles:       sc.MaxCycles,
		Context:         sc.Context,
		WatchdogWindow:  sc.WatchdogWindow,
		DisableWatchdog: sc.DisableWatchdog,
		Telemetry:       pipe,
		Tracer:          sc.Tracer,
	})
}

func printReport(w *os.File, cfg config.Config, r *stats.Report) {
	fmt.Fprintf(w, "workload            %s on %d nodes (%s %d-way, window %d, %v/%v)\n",
		r.Label, cfg.Nodes, kind(cfg.InOrder), cfg.IssueWidth, cfg.WindowSize,
		cfg.Consistency, cfg.ConsistencyOpts)
	fmt.Fprintf(w, "instructions        %d\n", r.Instructions)
	fmt.Fprintf(w, "cycles              %d\n", r.Cycles)
	fmt.Fprintf(w, "IPC                 %.3f\n", r.IPC(cfg.Nodes))
	fmt.Fprintf(w, "idle cycles         %.0f (factored out of breakdown)\n\n", r.IdleCycles)

	n := r.Normalized(r)
	fmt.Fprintf(w, "execution time breakdown (fraction of non-idle time):\n")
	fmt.Fprintf(w, "  CPU (busy+FU)     %.3f\n", n.CPU())
	fmt.Fprintf(w, "  instruction       %.3f\n", n[stats.Instr])
	fmt.Fprintf(w, "  read              %.3f  (L1 %.3f, L2 %.3f, local %.3f, remote %.3f, dirty %.3f, dTLB %.3f)\n",
		n.Read(), n[stats.ReadL1], n[stats.ReadL2], n[stats.ReadLocal],
		n[stats.ReadRemote], n[stats.ReadDirty], n[stats.ReadDTLB])
	fmt.Fprintf(w, "  write             %.3f\n", n[stats.Write])
	fmt.Fprintf(w, "  synchronization   %.3f\n", n[stats.Sync])
	if h := n.HTM(); h > 0 {
		fmt.Fprintf(w, "  htm resolution    %.3f  (conflict %.3f, capacity %.3f, explicit %.3f)\n",
			h, n[stats.HTMConflict], n[stats.HTMCapacity], n[stats.HTMExplicit])
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "miss rates          L1I %.2f%%  L1D %.2f%%  L2 %.2f%%\n",
		r.L1IMissRate*100, r.L1DMissRate*100, r.L2MissRate*100)
	fmt.Fprintf(w, "branch mispredict   %.2f%%\n", r.BranchMispred*100)
	fmt.Fprintf(w, "TLB miss rates      iTLB %.3f%%  dTLB %.3f%%\n", r.ITLBMissRate*100, r.DTLBMissRate*100)
	fmt.Fprintf(w, "dirty fraction      %.1f%% of coherence reads serviced cache-to-cache\n", r.DirtyFraction*100)
	if r.StreamBufHitRate > 0 {
		fmt.Fprintf(w, "stream buffer       %.1f%% of L1I misses satisfied\n", r.StreamBufHitRate*100)
	}
	if r.MigratoryLines > 0 {
		fmt.Fprintf(w, "migratory           %.0f%% shared writes, %.0f%% dirty reads; %d lines, %d PCs\n",
			r.SharedWriteMigratory*100, r.ReadDirtyMigratory*100, r.MigratoryLines, r.MigratoryPCs)
	}
	if r.LatchAcquires > 0 {
		fmt.Fprintf(w, "lock table          %d acquires (%d contended, %d handoffs)\n",
			r.LatchAcquires, r.LatchContended, r.LatchHandoffs)
	}
	if r.HTMBegins > 0 {
		fmt.Fprintf(w, "htm elision         %d begins, %d commits, %d aborts (conflict %d, capacity %d, explicit %d), %d fallbacks\n",
			r.HTMBegins, r.HTMCommits, r.HTMAborts(),
			r.HTMConflictAborts, r.HTMCapacityAborts, r.HTMExplicitAborts, r.HTMFallbacks)
	}
	fmt.Fprintf(w, "network             %.0f cycles average message latency\n", r.AvgNetLatency)
}

func kind(inorder bool) string {
	if inorder {
		return "in-order"
	}
	return "out-of-order"
}
