// Command tracegen materializes workload instruction traces to files in the
// repository's trace format (one file per server process, as in the paper's
// methodology), and can summarize existing trace files.
//
// Examples:
//
//	tracegen -workload oltp -procs 4 -tx 2 -o /tmp/oltp
//	tracegen -workload dss -procs 2 -rows 10000 -o /tmp/dss
//	tracegen -summarize /tmp/oltp.p0.trace
//
// Exit status: 0 on success, 1 when generation or file I/O fails, 2 on
// flag/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload/dss"
	"repro/internal/workload/oltp"
)

func main() {
	logger := obs.Init("tracegen")
	fatal := func(err error) {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
	var (
		workload  = flag.String("workload", "oltp", "workload: oltp or dss")
		procs     = flag.Int("procs", 4, "number of server processes")
		tx        = flag.Int("tx", 2, "OLTP transactions per process")
		rows      = flag.Int("rows", 10_000, "DSS rows per process")
		out       = flag.String("o", "trace", "output path prefix")
		summarize = flag.String("summarize", "", "summarize an existing trace file and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalUsage("unexpected arguments: %v", flag.Args())
	}
	if *procs <= 0 {
		fatalUsage("-procs must be positive, got %d", *procs)
	}

	if *summarize != "" {
		if err := summary(*summarize); err != nil {
			fatal(err)
		}
		return
	}

	streams := make([]trace.Stream, *procs)
	wErr := func() error { return nil }
	switch *workload {
	case "oltp":
		if *tx <= 0 {
			fatalUsage("-tx must be positive, got %d", *tx)
		}
		cfg := oltp.DefaultConfig(1)
		cfg.Processes = *procs
		cfg.TransactionsPerProcess = *tx
		w := oltp.New(cfg)
		for p := range streams {
			streams[p] = w.Stream(p)
		}
		wErr = w.Err
	case "dss":
		if *rows <= 0 {
			fatalUsage("-rows must be positive, got %d", *rows)
		}
		cfg := dss.DefaultConfig(1)
		cfg.Processes = *procs
		cfg.RowsPerProcess = *rows
		w := dss.New(cfg)
		for p := range streams {
			streams[p] = w.Stream(p)
		}
	default:
		fatalUsage("unknown workload %q (oltp or dss)", *workload)
	}

	for p, s := range streams {
		path := fmt.Sprintf("%s.p%d.trace", *out, p)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		n, err := trace.WriteAll(w, s)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(path)
		fmt.Printf("%s: %d instructions, %d bytes (%.2f B/instr)\n",
			path, n, st.Size(), float64(st.Size())/float64(n))
	}
	// A workload-model failure truncates its streams; the traces written
	// above would be silently short, so fail loudly instead.
	if err := wErr(); err != nil {
		fatal(err)
	}
}

// fatalUsage reports a flag/usage error: message, usage text, exit 2.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

func summary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var counts [16]uint64
	var n uint64
	var in trace.Instr
	for r.Next(&in) {
		n++
		counts[in.Op]++
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions\n", path, n)
	for op := trace.Op(0); int(op) < len(counts); op++ {
		if counts[op] == 0 {
			continue
		}
		fmt.Printf("  %-10v %10d (%5.2f%%)\n", op, counts[op], float64(counts[op])/float64(n)*100)
	}
	return nil
}
