// Command sweepworker is a remote sweep worker: it pulls leased points
// from a sweepd server, runs them through internal/runner's supervision
// (per-point deadlines, panic isolation, classified failures, jittered
// capped-backoff retries), heartbeats to keep its leases alive, and
// reports results idempotently. SIGKILL it mid-point and the lease
// expires, the point is re-issued, and the sweep completes anyway — that
// is the chaos harness's whole job.
//
// Each worker self-monitors (heap, goroutines, rusage, points/sec) in the
// style of cc-metric-collector's `self` collector; samples ride the
// heartbeats to sweepd's /metrics page and are optionally served locally
// with -metrics-addr.
//
// Example:
//
//	sweepworker -server http://host:8044 -name w1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sweepsvc"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(log.Ltime)
	var (
		server       = flag.String("server", "http://127.0.0.1:8044", "sweepd base URL")
		name         = flag.String("name", "", "worker name (default host-pid)")
		heartbeat    = flag.Duration("heartbeat", 0, "lease renewal period (0 = lease TTL / 4)")
		pointTimeout = flag.Duration("point-timeout", 0, "per-point wall-clock deadline (0 = derived from the point's cycle budget)")
		retries      = flag.Int("retries", 2, "worker-side retry budget per point")
		selfEvery    = flag.Duration("self-interval", 5*time.Second, "self-monitoring sample interval")
		metricsAddr  = flag.String("metrics-addr", "", "also serve this worker's self-metrics at this address (optional)")
		ckDir        = flag.String("checkpoint-dir", "", "checkpoint running points under this directory and ship captures with heartbeats, making points preemptible and migratable (optional)")
	)
	flag.Parse()
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = sweepsvc.WorkerID(host, os.Getpid())
	}
	log.SetPrefix("sweepworker[" + *name + "]: ")

	w := &sweepsvc.Worker{
		Client:         &sweepsvc.Client{Base: strings.TrimRight(*server, "/")},
		Name:           *name,
		Build:          func(p *sweepsvc.JobPoint) (runner.Point, error) { return experiments.PointFromSpec(p.Spec) },
		HeartbeatEvery: *heartbeat,
		PointTimeout:   *pointTimeout,
		RetryBudget:    *retries,
		CheckpointDir:  *ckDir,
		Log:            log.Printf,
	}
	self := &telemetry.SelfCollector{Interval: *selfEvery, Points: w.PointsDone, SimCounters: w.SimCounters}
	w.Self = self

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go self.Run(ctx)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
			var sb strings.Builder
			telemetry.PromSelf(&sb, "sweepworker_", self.Last(), map[string]string{"worker": *name})
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(rw, sb.String())
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	log.Printf("pulling from %s", *server)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	log.Print("stopped")
}
