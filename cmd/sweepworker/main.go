// Command sweepworker is a remote sweep worker: it pulls leased points
// from a sweepd server, runs them through internal/runner's supervision
// (per-point deadlines, panic isolation, classified failures, jittered
// capped-backoff retries), heartbeats to keep its leases alive, and
// reports results idempotently. SIGKILL it mid-point and the lease
// expires, the point is re-issued, and the sweep completes anyway — that
// is the chaos harness's whole job.
//
// Each worker self-monitors (heap, goroutines, rusage, points/sec) in the
// style of cc-metric-collector's `self` collector; samples ride the
// heartbeats to sweepd's /metrics page and are optionally served locally
// with -metrics-addr (which also mounts /debug/pprof/). Logs are
// structured JSON on stderr; -span-log records the worker-side half of
// each point's span tree (run, heartbeat, checkpoint-ship) for
// cmd/sweeptrace to stitch against sweepd's.
//
// Example:
//
//	sweepworker -server http://host:8044 -name w1
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sweepsvc"
	"repro/internal/telemetry"
)

func main() {
	var (
		server       = flag.String("server", "http://127.0.0.1:8044", "sweepd base URL")
		name         = flag.String("name", "", "worker name (default host-pid)")
		heartbeat    = flag.Duration("heartbeat", 0, "lease renewal period (0 = lease TTL / 4)")
		pointTimeout = flag.Duration("point-timeout", 0, "per-point wall-clock deadline (0 = derived from the point's cycle budget)")
		retries      = flag.Int("retries", 2, "worker-side retry budget per point")
		selfEvery    = flag.Duration("self-interval", 5*time.Second, "self-monitoring sample interval")
		metricsAddr  = flag.String("metrics-addr", "", "also serve this worker's self-metrics (and /debug/pprof/) at this address (optional)")
		ckDir        = flag.String("checkpoint-dir", "", "checkpoint running points under this directory and ship captures with heartbeats, making points preemptible and migratable (optional)")
		spanLogPath  = flag.String("span-log", "", "append-only JSONL span log (worker half of each point's trace; stitch with sweeptrace)")
	)
	flag.Parse()
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = sweepsvc.WorkerID(host, os.Getpid())
	}
	logger := obs.Init("sweepworker").With(obs.KeyWorker, *name)

	var spans *obs.SpanLog
	if *spanLogPath != "" {
		var err error
		spans, err = obs.OpenSpanLog(*spanLogPath, "sweepworker/"+*name)
		if err != nil {
			logger.Error("fatal", "error", err.Error())
			os.Exit(1)
		}
		defer spans.Close()
	}

	w := &sweepsvc.Worker{
		Client:         &sweepsvc.Client{Base: strings.TrimRight(*server, "/")},
		Name:           *name,
		Build:          func(p *sweepsvc.JobPoint) (runner.Point, error) { return experiments.PointFromSpec(p.Spec) },
		HeartbeatEvery: *heartbeat,
		PointTimeout:   *pointTimeout,
		RetryBudget:    *retries,
		CheckpointDir:  *ckDir,
		Log:            obs.Printf(logger, slog.LevelInfo),
		Logger:         logger,
		Spans:          spans,
		Provenance:     obs.Collect("sweepworker", os.Args[1:]),
	}
	self := &telemetry.SelfCollector{Interval: *selfEvery, Points: w.PointsDone, SimCounters: w.SimCounters}
	w.Self = self

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go self.Run(ctx)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
			var sb strings.Builder
			telemetry.PromBuildInfo(&sb, "sweepworker_build_info")
			telemetry.PromSelf(&sb, "sweepworker_", self.Last(), map[string]string{"worker": *name})
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(rw, sb.String())
		})
		telemetry.MountPprof(mux)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Warn("metrics server failed", "error", err.Error())
			}
		}()
	}

	logger.Info("pulling", "server", *server)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
	logger.Info("stopped", "points_done", w.PointsDone())
}
